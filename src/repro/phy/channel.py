"""Shared broadcast acoustic medium.

The channel connects every registered modem: a transmission is delivered to
each other modem within reception range as an :class:`Arrival` whose start
is offset by the pair's propagation delay and whose level comes from the
link budget.  Node positions are supplied by callables so mobility models
can move nodes without the channel knowing about them.

Range semantics follow the paper: a hard communication range (Table 2:
1.5 km) bounds who can hear whom, matching "the collision occurs when two
or more packets [from neighbours] arrive at a sensor at the same time".
An optional ``interference_range_factor > 1`` extends delivery (at reduced
level) to model interference reaching past the decode range — used in
robustness ablations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..acoustic.fading import FadingProcess, NoFading
from ..acoustic.geometry import Position
from ..acoustic.per import DefaultPerModel, PerModel
from ..acoustic.propagation import PropagationModel, StraightLinePropagation
from ..acoustic.sinr import LinkBudget
from ..des.events import PRIORITY_HIGH
from ..des.simulator import Simulator
from .frame import Frame
from .linkcache import LinkStateCache
from .modem import ARRIVAL_POOL_CAP, AcousticModem, Arrival

#: Paper Table 2 defaults.
DEFAULT_BITRATE_BPS = 12_000.0
DEFAULT_RANGE_M = 1500.0


@dataclass
class ChannelStats:
    """Aggregate channel counters.

    ``cache_hits`` / ``cache_misses`` count link-state pair lookups (both
    stay 0 when the cache is disabled); their ratio is the headline number
    of the perf instrumentation layer.  ``vector_batches`` counts vectorized
    kernel passes (row builds plus partial refreshes) and ``rows_refreshed``
    counts stale rows brought back up to date — a static cell shows builds
    only (``rows_refreshed == 0``) while a mobile cell accumulates refreshes
    every mobility tick.

    The spatial-hash counters describe the reach cull: ``grid_candidates``
    accumulates the candidate-set size (3x3x3 cell neighborhood, excluding
    self) per broadcast — divide by ``broadcasts`` for the mean scan width,
    versus ``n - 1`` for the full scan — and ``grid_cells`` is a gauge of
    currently occupied cells.  ``rows_skipped_delta`` counts stale pair
    recomputes skipped by the movement-bounded delta-epoch test (the pair
    was cached so deep out of reach that the endpoints' accumulated motion
    could not have brought it back in reach); ``rows_skipped_inreach`` is
    the symmetric inside-the-boundary count (masks provably unchanged,
    scalar recompute deferred to the next fan-out build).

    ``bulk_pushes`` / ``bulk_events`` describe the batched fan-out path:
    one bulk push schedules every arrival of a broadcast through
    :meth:`EventQueue.push_bulk`, so their ratio is the mean scheduled
    fan-out per transmission.
    """

    broadcasts: int = 0
    deliveries: int = 0
    out_of_range_skips: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    vector_batches: int = 0
    rows_refreshed: int = 0
    grid_candidates: int = 0
    grid_cells: int = 0
    rows_skipped_delta: int = 0
    rows_skipped_inreach: int = 0
    bulk_pushes: int = 0
    bulk_events: int = 0

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of link-state lookups served from cache (0 if none)."""
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0


class AcousticChannel:
    """Broadcast medium binding modems, propagation and the link budget.

    Args:
        sim: The simulation kernel.
        bitrate_bps: Channel bitrate (paper: 12 kbps).
        max_range_m: Hard communication range (paper: 1.5 km).
        propagation: Delay model (defaults to straight line at 1500 m/s).
        link_budget: SINR link budget for received levels.
        per_model: Packet error model (defaults to NS-3-style threshold).
        interference_range_factor: Deliver (as interference) up to
            ``factor * max_range_m``; 1.0 reproduces the paper's model.
        use_link_cache: Route geometry queries through the epoch-invalidated
            :class:`LinkStateCache` (bit-identical results either way; the
            flag exists for the equivalence tests and A/B profiling).
        use_spatial_grid: Cull broadcast rows to the 3x3x3 spatial-hash
            neighborhood of the transmitter (bit-identical; A/B flag).
            Ignored when the link cache is off.
        use_delta_epochs: Skip recomputing stale pairs whose accumulated
            endpoint motion provably cannot have brought them back in
            reach (bit-identical; A/B flag).  Ignored without the cache.
        use_inreach_delta: The symmetric inside-the-boundary bound: pairs
            cached farther inside a mask boundary than their accumulated
            motion keep their masks without recompute, and their scalar
            recompute is deferred to the next fan-out build
            (bit-identical; A/B flag).  Ignored without the cache.
        use_bulk_schedule: Schedule each broadcast's arrivals as one
            pre-sorted batch through :meth:`Simulator.push_bulk` instead
            of one ``push_at`` per receiver (bit-identical; A/B flag).
            Falls back to the scalar loop when fading is active or the
            link cache is off.
        pool_arrivals: Recycle :class:`Arrival` objects through a
            free-list (repopulated at modem prune time) instead of
            allocating one per delivery.  Off by default because external
            callers may legitimately retain Arrival references past the
            receive callback; the scenario layer — whose MACs never do —
            turns it on via ``ScenarioConfig.arrival_pool``.
        arrival_pool_cap: Upper bound on free-listed Arrivals, so
            pathological delivery bursts cannot pin memory
            (``ScenarioConfig.arrival_pool_cap``).
    """

    def __init__(
        self,
        sim: Simulator,
        bitrate_bps: float = DEFAULT_BITRATE_BPS,
        max_range_m: float = DEFAULT_RANGE_M,
        propagation: Optional[PropagationModel] = None,
        link_budget: Optional[LinkBudget] = None,
        per_model: Optional[PerModel] = None,
        interference_range_factor: float = 1.0,
        fading: Optional[FadingProcess] = None,
        use_link_cache: bool = True,
        use_spatial_grid: bool = True,
        use_delta_epochs: bool = True,
        use_inreach_delta: bool = True,
        use_bulk_schedule: bool = True,
        pool_arrivals: bool = False,
        arrival_pool_cap: int = ARRIVAL_POOL_CAP,
    ) -> None:
        if bitrate_bps <= 0:
            raise ValueError("bitrate must be positive")
        if max_range_m <= 0:
            raise ValueError("range must be positive")
        if interference_range_factor < 1.0:
            raise ValueError("interference_range_factor must be >= 1")
        if arrival_pool_cap < 0:
            raise ValueError("arrival_pool_cap must be >= 0")
        self.sim = sim
        self.bitrate_bps = bitrate_bps
        self.max_range_m = max_range_m
        self.propagation = propagation or StraightLinePropagation()
        self.link_budget = link_budget or LinkBudget()
        if per_model is None:
            # Calibrate the decode threshold so the decode range equals the
            # configured communication range: a lone frame decodes iff it
            # was sent from within max_range_m, while signals from farther
            # out (when interference_range_factor > 1) act as interference.
            per_model = DefaultPerModel(
                # 0.5 dB margin so a frame from exactly max_range_m decodes
                # despite floating-point dB/linear round-trips.
                threshold_db=self.link_budget.snr_db(max_range_m) - 0.5
            )
        self.per_model = per_model
        self.interference_range_factor = interference_range_factor
        self.fading = fading if fading is not None else NoFading()
        # NoFading contributes exactly 0 dB; skipping the call entirely
        # keeps the broadcast loop free of a per-receiver virtual dispatch.
        self._fading_active = not isinstance(self.fading, NoFading)
        self.per_rng = sim.streams.get("channel.per")
        #: Transient network-wide noise-floor elevation in dB (fault
        #: injection: ship-noise windows).  0.0 — always, in clean runs —
        #: leaves every decode arithmetically untouched; noise bursts
        #: raise and later restore it.
        self.extra_noise_db = 0.0
        self.stats = ChannelStats()
        self._members: Dict[int, Tuple[AcousticModem, Callable[[], Position]]] = {}
        #: Shared Arrival free-list (None = pooling disabled).  Modems
        #: return pruned arrivals here; ``_fan_out`` reuses them in place
        #: of fresh allocations.  Bounded so pathological bursts cannot
        #: pin memory.
        self.arrival_pool: Optional[list] = [] if pool_arrivals else None
        self.arrival_pool_cap = arrival_pool_cap
        # Batched fan-out needs the cached per-row delay vector and bound
        # callbacks, and per-pair fading would reintroduce a scalar loop
        # anyway — so the bulk path is active only with the cache on and
        # fading off; everything else falls back to the scalar loop.
        self._bulk = use_bulk_schedule and use_link_cache and not self._fading_active
        self.link_cache: Optional[LinkStateCache] = None
        if use_link_cache:
            self.link_cache = LinkStateCache(
                self._members,
                self.propagation,
                self.link_budget,
                self.max_range_m,
                self.max_range_m * self.interference_range_factor,
                self.stats,
                use_spatial_grid=use_spatial_grid,
                use_delta_epochs=use_delta_epochs,
                use_inreach_delta=use_inreach_delta,
                build_bulk_products=self._bulk,
            )

    # ------------------------------------------------------------------
    def create_modem(self, node_id: int, position_fn: Callable[[], Position]) -> AcousticModem:
        """Create, register and return a modem for ``node_id``."""
        if node_id in self._members:
            raise ValueError(f"node id {node_id} already registered")
        modem = AcousticModem(self.sim, node_id, self)
        self._members[node_id] = (modem, position_fn)
        if self.link_cache is not None:
            self.link_cache.add_node(node_id)
        return modem

    def note_position_change(self, node_id: Optional[int] = None) -> None:
        """Invalidate cached link state for a moved node.

        With a ``node_id`` only that node's epoch bumps, so every pair not
        touching it stays warm (the point of per-node epochs); with ``None``
        every epoch bumps and all positions are re-read — the conservative
        form for callers that mutated positions out-of-band.
        """
        if self.link_cache is not None:
            self.link_cache.invalidate(node_id)

    def position_of(self, node_id: int) -> Position:
        """Current position of a registered node."""
        return self._members[node_id][1]()

    def modem_of(self, node_id: int) -> AcousticModem:
        return self._members[node_id][0]

    @property
    def node_ids(self) -> Tuple[int, ...]:
        return tuple(self._members.keys())

    def distance_m(self, a: int, b: int) -> float:
        """Current geometric distance between two registered nodes."""
        if self.link_cache is not None:
            return self.link_cache.link(a, b).distance_m
        return self.position_of(a).distance_to(self.position_of(b))

    def propagation_delay_s(self, a: int, b: int) -> float:
        """Ground-truth propagation delay between two registered nodes."""
        if self.link_cache is not None:
            return self.link_cache.link(a, b).delay_s
        return self.propagation.delay_s(
            self.position_of(a), self.position_of(b), pair=(a, b)
        )

    def neighbors_of(self, node_id: int) -> Tuple[int, ...]:
        """Ground-truth one-hop neighbours (in decode range, alive) now."""
        if self.link_cache is not None:
            # Geometry comes from the cache; liveness is read fresh so
            # failure injection is reflected without an epoch bump.
            members = self._members
            return tuple(
                other
                for other in self.link_cache.in_range_ids(node_id)
                if members[other][0].enabled
            )
        origin = self.position_of(node_id)
        return tuple(
            other
            for other, (modem, pos_fn) in self._members.items()
            if other != node_id
            and modem.enabled
            and origin.distance_to(pos_fn()) <= self.max_range_m
        )

    # ------------------------------------------------------------------
    def broadcast(self, tx_modem: AcousticModem, frame: Frame, duration_s: float) -> None:
        """Deliver ``frame`` to every modem in range, after propagation.

        Both paths produce an identical in-reach target list — the cached
        one from the vector kernel's precomputed per-row fan-out, the
        uncached one from a fresh scalar scan — and hand it to the shared
        :meth:`_fan_out`, so Arrival construction and scheduling cannot
        diverge between them.
        """
        self.stats.broadcasts += 1
        tx_id = tx_modem.node_id
        cache = self.link_cache
        if cache is not None:
            row = cache.broadcast_row(tx_id)
            targets = cache.deliveries(row)
            self.stats.out_of_range_skips += row.skips
            self.stats.grid_candidates += row.candidate_count
            if self._bulk and targets:
                self._fan_out_bulk(tx_id, frame, duration_s, targets, row)
            else:
                self._fan_out(tx_id, frame, duration_s, targets)
            return
        tx_pos = self.position_of(tx_id)
        reach = self.max_range_m * self.interference_range_factor
        targets = []
        skips = 0
        for node_id, (modem, pos_fn) in self._members.items():
            if node_id == tx_id:
                continue
            rx_pos = pos_fn()
            distance = tx_pos.distance_to(rx_pos)
            if distance > reach:
                skips += 1
                continue
            targets.append(
                (
                    node_id,
                    modem,
                    self.propagation.delay_s(tx_pos, rx_pos, pair=(tx_id, node_id)),
                    self.link_budget.received_level_db(distance),
                )
            )
        self.stats.out_of_range_skips += skips
        self._fan_out(tx_id, frame, duration_s, targets)

    def _fan_out(
        self,
        tx_id: int,
        frame: Frame,
        duration_s: float,
        targets: "list[Tuple[int, AcousticModem, float, float]]",
    ) -> None:
        """Schedule one Arrival per in-reach target ``(id, modem, delay, level)``."""
        now = self.sim.now
        stats = self.stats
        push_at = self.sim.push_at
        fading_active = self._fading_active
        pool = self.arrival_pool
        for node_id, modem, delay, level in targets:
            if fading_active:
                level += self.fading.fade_db((tx_id, node_id), now)
            start = now + delay
            if pool:
                # Recycle a pruned Arrival: every field is overwritten, and
                # pruning only returns arrivals whose finish event already
                # fired, so no live reference can observe the reuse.
                arrival = pool.pop()
                arrival.frame = frame
                arrival.src = tx_id
                arrival.start = start
                arrival.end = start + duration_s
                arrival.level_db = level
                arrival.delay_s = delay
            else:
                arrival = Arrival(frame, tx_id, start, start + duration_s, level, delay)
            # High priority so arrivals register before same-instant MAC logic.
            push_at(start, modem.begin_arrival, (arrival,), PRIORITY_HIGH)
        stats.deliveries += len(targets)

    def _fan_out_bulk(
        self,
        tx_id: int,
        frame: Frame,
        duration_s: float,
        targets: "list[Tuple[int, AcousticModem, float, float]]",
        row,
    ) -> None:
        """Batched fan-out: one :meth:`Simulator.push_bulk` per broadcast.

        Arrival times come from one vectorized add over the row's cached
        delay vector (IEEE-identical to the scalar ``now + delay``), and
        the whole batch is heap-inserted in a single pass with sequence
        numbers in target order — so pop order, and therefore every
        downstream RNG draw, matches the scalar loop bit for bit.
        """
        now = self.sim.now
        starts = now + row.delivery_delays
        ends = starts + duration_s
        starts_l = starts.tolist()
        ends_l = ends.tolist()
        pool = self.arrival_pool
        arrivals = []
        append = arrivals.append
        for target, start, end in zip(targets, starts_l, ends_l):
            if pool:
                arrival = pool.pop()
                arrival.frame = frame
                arrival.src = tx_id
                arrival.start = start
                arrival.end = end
                arrival.level_db = target[3]
                arrival.delay_s = target[2]
            else:
                arrival = Arrival(frame, tx_id, start, end, target[3], target[2])
            append(arrival)
        # zip(arrivals) builds the per-event 1-tuple args at C speed.
        self.sim.push_bulk(
            starts_l, row.delivery_callbacks, list(zip(arrivals)), PRIORITY_HIGH
        )
        stats = self.stats
        stats.deliveries += len(targets)
        stats.bulk_pushes += 1
        stats.bulk_events += len(targets)

    # ------------------------------------------------------------------
    def max_propagation_delay_s(self) -> float:
        """tau_max: the delay across the full communication range."""
        # Conservative nominal-speed estimate; protocols size slots from this
        # (paper: "the duration of each time slot is tau_max + omega").
        return self.max_range_m / self.propagation.speed_mps()

    def control_duration_s(self, control_bits: int = 64) -> float:
        """omega: on-air time of a control packet."""
        return control_bits / self.bitrate_bps
