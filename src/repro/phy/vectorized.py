"""NumPy struct-of-arrays broadcast kernel with per-node position epochs.

The per-receiver Python loop in :meth:`AcousticChannel.broadcast` was the
simulator's residual hot spot after the link-state cache PR: every
transmission walked the member dict, looked each ordered pair up in a hash
map, and on every 5 s mobility tick the *whole* cache was discarded even
though only the moved nodes' links changed (~25% hit rate on mobile Table 2
cells).  This module replaces the per-pair storage with contiguous
struct-of-arrays state so that one transmission computes distance,
propagation delay, received level and in-reach masks for *all* receivers in
a single vectorized pass, and replaces the global position epoch with
**per-node epochs** so un-moved pairs stay warm across mobility ticks.

Layout
------
:class:`VectorLinkKernel` keeps, in registration order (which is also the
member-dict iteration order the scalar path used):

* ``xs / ys / zs`` — node coordinates as float64 arrays;
* ``epoch`` — one int64 counter per node, bumped when *that* node moves;
* ``total_epoch`` — the sum of all bumps, used as an O(1) "did anything
  move since this row was refreshed?" check per broadcast;
* per-transmitter :class:`RowState` rows holding the pair's distance,
  delay, level, reach/decode masks and a per-pair epoch **stamp**.

A pair's stamp records ``epoch[tx] + epoch[rx]`` at compute time.  Epochs
are monotonic, so the stamp equals the current sum *iff neither endpoint
moved* — a mobility tick therefore dirties exactly the moved rows/columns
and a row refresh recomputes only its stale entries, vectorized.

Bit-identity
------------
Results are bit-identical with the scalar uncached path (gated by the
equivalence matrix and property tests): subtraction, multiplication,
``sqrt`` and division round identically in NumPy and CPython, distances are
squared with explicit multiplies on both paths (see
:meth:`Position.distance_to`), and the one operation NumPy's SIMD kernels
are allowed to round differently — ``log10`` — stays on libm inside
:meth:`PathLossModel.path_loss_db_batch`.  Propagation models whose delay
is not a pure function of geometry fall back to a scalar per-pair loop in
:meth:`PropagationModel.delay_s_batch`, which is bit-identical by
construction.

Memory
------
Row storage is bounded: at most ``row_budget_entries`` cached pair entries
(~`budget * 33` bytes).  Beyond that — thousand-node ``scale`` sweeps —
rows are evicted least-recently-used; recomputing an evicted row is one
vectorized pass, not a per-pair scalar walk.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple, TYPE_CHECKING

import numpy as np

from ..acoustic.geometry import Position
from ..acoustic.sinr import LinkBudget

if TYPE_CHECKING:  # pragma: no cover
    from ..acoustic.propagation import PropagationModel
    from .channel import ChannelStats
    from .modem import AcousticModem

#: Default cap on cached pair entries across all rows (~130 MB worst case).
DEFAULT_ROW_BUDGET_ENTRIES = 4_000_000


class RowState:
    """One transmitter's link state against every registered receiver.

    Attributes:
        n: Member count the row was sized for (a membership change makes
            the row unusable and it is rebuilt from scratch).
        total_epoch: Kernel ``total_epoch`` at the last freshness check —
            when it still matches, nothing anywhere moved and the row is
            served without touching any array.
        stamp: Per-pair epoch sums at compute time (staleness detector).
        distance_m / delay_s / level_db: Pair scalars, aligned with the
            registration order.
        in_reach: Delivery reach mask (decode range × interference factor).
        in_decode: Hard communication-range mask (neighbour relation).
        deliveries: Lazily built broadcast fan-out list of
            ``(rx_id, modem, delay_s, level_db)`` for in-reach receivers,
            in registration order; invalidated by any refresh.
        skips: Out-of-reach receiver count backing the channel's
            ``out_of_range_skips`` counter (valid once ``deliveries`` is).
        decode_ids: Lazily built tuple of in-decode-range node ids.
    """

    __slots__ = (
        "n",
        "total_epoch",
        "stamp",
        "distance_m",
        "delay_s",
        "level_db",
        "in_reach",
        "in_decode",
        "deliveries",
        "skips",
        "decode_ids",
    )

    def __init__(self, n: int) -> None:
        self.n = n
        self.total_epoch = -1
        self.stamp: Optional[np.ndarray] = None
        self.distance_m = np.empty(n, dtype=np.float64)
        self.delay_s = np.empty(n, dtype=np.float64)
        self.level_db = np.empty(n, dtype=np.float64)
        self.in_reach = np.zeros(n, dtype=bool)
        self.in_decode = np.zeros(n, dtype=bool)
        self.deliveries: Optional[List[Tuple[int, "AcousticModem", float, float]]] = None
        self.skips = 0
        self.decode_ids: Optional[Tuple[int, ...]] = None


class VectorLinkKernel:
    """Struct-of-arrays link-state store with per-node position epochs."""

    __slots__ = (
        "_members",
        "_propagation",
        "_link_budget",
        "_max_range_m",
        "_reach_m",
        "_stats",
        "_ids",
        "_index",
        "_xs",
        "_ys",
        "_zs",
        "_epoch",
        "_ids_arr",
        "_n",
        "total_epoch",
        "_rows",
        "_row_budget",
        "_max_rows",
        "_lru_active",
    )

    def __init__(
        self,
        members: Dict[int, Tuple["AcousticModem", Callable[[], Position]]],
        propagation: "PropagationModel",
        link_budget: LinkBudget,
        max_range_m: float,
        reach_m: float,
        stats: "ChannelStats",
        row_budget_entries: int = DEFAULT_ROW_BUDGET_ENTRIES,
    ) -> None:
        self._members = members
        self._propagation = propagation
        self._link_budget = link_budget
        self._max_range_m = max_range_m
        self._reach_m = reach_m
        self._stats = stats
        self._ids: List[int] = []
        self._index: Dict[int, int] = {}
        capacity = 64
        self._xs = np.empty(capacity, dtype=np.float64)
        self._ys = np.empty(capacity, dtype=np.float64)
        self._zs = np.empty(capacity, dtype=np.float64)
        self._epoch = np.zeros(capacity, dtype=np.int64)
        self._ids_arr = np.empty(capacity, dtype=np.int64)
        self._n = 0
        #: Monotonic sum of every per-node epoch bump (plus registrations);
        #: rows compare against it for the O(1) nothing-moved fast path.
        self.total_epoch = 0
        self._rows: "OrderedDict[int, RowState]" = OrderedDict()
        self._row_budget = row_budget_entries
        self._max_rows = row_budget_entries
        self._lru_active = False
        for node_id in members:
            self.add_node(node_id)

    # ------------------------------------------------------------------
    # Membership and movement
    # ------------------------------------------------------------------
    def add_node(self, node_id: int) -> None:
        """Register a node, growing the coordinate arrays.

        Bumps :attr:`total_epoch` so cached neighbour sets recompute, and
        existing rows (sized for the old member count) rebuild on next use
        — matching the uncached path, where a freshly registered modem is
        visible to the very next query.
        """
        if node_id in self._index:
            return
        idx = self._n
        if idx == len(self._xs):
            self._grow()
        pos = self._members[node_id][1]()
        self._xs[idx] = pos.x
        self._ys[idx] = pos.y
        self._zs[idx] = pos.z
        self._epoch[idx] = 0
        self._ids_arr[idx] = node_id
        self._ids.append(node_id)
        self._index[node_id] = idx
        self._n = idx + 1
        self.total_epoch += 1
        self._max_rows = max(16, self._row_budget // self._n)
        self._lru_active = self._n > self._max_rows

    def _grow(self) -> None:
        capacity = len(self._xs) * 2
        for name in ("_xs", "_ys", "_zs", "_epoch", "_ids_arr"):
            old = getattr(self, name)
            fresh = np.empty(capacity, dtype=old.dtype)
            fresh[: self._n] = old[: self._n]
            if name == "_epoch":
                fresh[self._n :] = 0
            setattr(self, name, fresh)

    def invalidate(self, node_id: Optional[int] = None) -> None:
        """Note that ``node_id`` moved (or, with ``None``, that anything
        may have: every epoch bumps and every position is re-read)."""
        if node_id is None:
            n = self._n
            members = self._members
            ids = self._ids
            for idx in range(n):
                pos = members[ids[idx]][1]()
                self._xs[idx] = pos.x
                self._ys[idx] = pos.y
                self._zs[idx] = pos.z
            self._epoch[:n] += 1
            self.total_epoch += 1
            return
        idx = self._index[node_id]
        pos = self._members[node_id][1]()
        self._xs[idx] = pos.x
        self._ys[idx] = pos.y
        self._zs[idx] = pos.z
        self._epoch[idx] += 1
        self.total_epoch += 1

    # ------------------------------------------------------------------
    # Row access
    # ------------------------------------------------------------------
    def row(self, node_id: int) -> RowState:
        """Fresh link-state row for transmitter ``node_id``.

        Fast path — nothing anywhere moved since the last check — is two
        integer comparisons.  Otherwise stale pairs are recomputed in one
        vectorized pass over exactly the dirty entries.
        """
        idx = self._index[node_id]
        rows = self._rows
        row = rows.get(idx)
        n = self._n
        stats = self._stats
        if row is not None and row.n == n:
            if self._lru_active:
                rows.move_to_end(idx)
            if row.total_epoch == self.total_epoch:
                stats.cache_hits += n - 1
                return row
            self._refresh(idx, row)
            return row
        if row is not None:
            del rows[idx]
        row = self._build(idx)
        rows[idx] = row
        if self._lru_active and len(rows) > self._max_rows:
            rows.popitem(last=False)
        return row

    def _compute(self, idx: int, row: RowState, targets: np.ndarray) -> None:
        """Vectorized pass filling ``row`` at ``targets`` (member indices)."""
        xs, ys, zs = self._xs, self._ys, self._zs
        x0, y0, z0 = xs[idx], ys[idx], zs[idx]
        dx = xs[targets] - x0
        dy = ys[targets] - y0
        dz = zs[targets] - z0
        dist = np.sqrt(dx * dx + dy * dy + dz * dz)
        origin = Position(float(x0), float(y0), float(z0))
        row.distance_m[targets] = dist
        row.delay_s[targets] = self._propagation.delay_s_batch(
            origin,
            xs[targets],
            ys[targets],
            zs[targets],
            dist,
            self._ids[idx],
            self._ids_arr[targets],
        )
        row.level_db[targets] = self._link_budget.received_level_db_batch(dist)
        row.in_reach[targets] = dist <= self._reach_m
        row.in_decode[targets] = dist <= self._max_range_m
        # The self pair is never delivered to and never queried.
        row.in_reach[idx] = False
        row.in_decode[idx] = False
        row.deliveries = None
        row.decode_ids = None
        self._stats.vector_batches += 1

    def _build(self, idx: int) -> RowState:
        n = self._n
        row = RowState(n)
        self._compute(idx, row, np.arange(n))
        row.stamp = self._epoch[idx] + self._epoch[:n]
        row.total_epoch = self.total_epoch
        self._stats.cache_misses += n - 1
        return row

    def _refresh(self, idx: int, row: RowState) -> None:
        n = self._n
        expected = self._epoch[idx] + self._epoch[:n]
        stale = row.stamp != expected
        stale[idx] = False
        dirty = np.nonzero(stale)[0]
        if len(dirty):
            self._compute(idx, row, dirty)
            self._stats.rows_refreshed += 1
            self._stats.cache_misses += len(dirty)
            self._stats.cache_hits += n - 1 - len(dirty)
        else:
            self._stats.cache_hits += n - 1
        row.stamp = expected
        row.total_epoch = self.total_epoch

    # ------------------------------------------------------------------
    # Derived per-row products
    # ------------------------------------------------------------------
    def deliveries(
        self, row: RowState
    ) -> List[Tuple[int, "AcousticModem", float, float]]:
        """Broadcast fan-out list for a fresh row (built once per refresh).

        Entries are ``(rx_id, modem, delay_s, level_db)`` python scalars in
        registration order — exactly the values and order the scalar loop
        produced — so the hot loop does no NumPy access per delivery.
        """
        built = row.deliveries
        if built is None:
            members = self._members
            ids = self._ids
            delays = row.delay_s
            levels = row.level_db
            built = [
                (ids[j], members[ids[j]][0], float(delays[j]), float(levels[j]))
                for j in np.nonzero(row.in_reach)[0].tolist()
            ]
            row.deliveries = built
            row.skips = row.n - 1 - len(built)
        return built

    def decode_ids(self, row: RowState) -> Tuple[int, ...]:
        """Ids within hard decode range, in registration order."""
        ids = row.decode_ids
        if ids is None:
            members_ids = self._ids
            ids = tuple(
                members_ids[j] for j in np.nonzero(row.in_decode)[0].tolist()
            )
            row.decode_ids = ids
        return ids

    def index_of(self, node_id: int) -> int:
        return self._index[node_id]
