"""NumPy struct-of-arrays broadcast kernel with spatial-hash reach culling.

The per-receiver Python loop in :meth:`AcousticChannel.broadcast` was the
simulator's residual hot spot after the link-state cache PR: every
transmission walked the member dict, looked each ordered pair up in a hash
map, and on every 5 s mobility tick the *whole* cache was discarded even
though only the moved nodes' links changed (~25% hit rate on mobile Table 2
cells).  This module replaces the per-pair storage with contiguous
struct-of-arrays state so that one transmission computes distance,
propagation delay, received level and in-reach masks for *all* receivers in
a single vectorized pass, and replaces the global position epoch with
**per-node epochs** so un-moved pairs stay warm across mobility ticks.

Per-node epochs alone still hit an O(n²) wall when the mobility model moves
*every* node each tick: each broadcast then refreshes a full O(n) row even
though acoustic reach is bounded and only a handful of receivers matter.
Two coordinated mechanisms make broadcast cost proportional to *plausible
receivers* instead:

Spatial hash grid
-----------------
Node positions are binned into cubic cells of side ``reach_m`` (decode
range x interference factor).  Any receiver within reach of a transmitter
must then sit in the 3x3x3 cell neighborhood around the transmitter's
cell, so :meth:`row` gathers only those **candidate** indices and
computes/refreshes exactly them.  Non-candidates are provably out of reach
— their masks stay ``False`` without ever touching their entries — and the
candidate set is finished with an *exact* distance mask, so results stay
bit-identical to the full scan.  Cell membership only changes when a node
crosses a cell boundary (rare at drift speeds), and candidate gathers are
reused until some node changes cell (``cells_epoch``).

Movement-bounded delta-epochs
-----------------------------
Every node accumulates its total displacement (``disp``) as it moves.
Each cached pair stamps ``disp[tx] + disp[rx]`` at compute time, so at
refresh time ``(disp[tx] + disp[rx]) - disp_stamp`` bounds from above how
far the pair's distance can have drifted since its entry was computed
(triangle inequality).  A stale pair whose cached distance exceeds
``reach_m`` by more than that bound *cannot* have re-entered reach, so its
recompute is skipped outright: the masks it would recompute are provably
still ``False``, and its scalar fields are never read by the broadcast
path while out of reach (point queries validate per-pair stamps and
recompute on demand, see :meth:`ensure_pair`).  The bound is conservative,
so skipping is bit-identical by construction.

The bound works symmetrically on the *inside* of the boundaries
(``use_inreach_delta``): a pair cached deeper inside the decode range than
its accumulated motion cannot have left it (both masks provably stay
``True``), and with an interference annulus (``reach_m > max_range_m``) a
pair cached farther from both boundaries than its motion stays
interference-only (``in_reach`` ``True``, ``in_decode`` ``False``).  Unlike
the out-of-reach skip, an in-reach pair's *scalars* (delay, level) feed
delivered arrivals, so an in-reach skip defers rather than discards that
work: the row is flagged ``scalars_stale`` and :meth:`deliveries` lazily
recomputes exactly the stale in-reach entries before building a fan-out
list.  Mask-only consumers — neighbour sets, decode-range queries — never
pay for the deferred scalars at all, and repeated movement between
fan-outs collapses several recomputes into one.

Layout
------
:class:`VectorLinkKernel` keeps, in registration order (which is also the
member-dict iteration order the scalar path used):

* ``xs / ys / zs`` — node coordinates as float64 arrays;
* ``epoch`` — one int64 counter per node, bumped when *that* node moves;
* ``disp`` — cumulative displacement (m) per node, the delta-epoch bound;
* ``total_epoch`` — the sum of all bumps, used as an O(1) "did anything
  move since this row was refreshed?" check per broadcast;
* a cell hash (``dict[(cx, cy, cz)] -> [indices]``) for reach culling;
* per-transmitter :class:`RowState` rows holding the pair's distance,
  delay, level, reach/decode masks and per-pair epoch **stamps**.

A pair's stamp records ``epoch[tx] + epoch[rx]`` at compute time.  Epochs
are monotonic, so the stamp equals the current sum *iff neither endpoint
moved* — a mobility tick therefore dirties exactly the moved rows/columns
and a row refresh recomputes only its stale entries, vectorized over the
candidate set.  A stamp of ``-1`` marks a pair never computed (or evicted
from the candidate neighborhood before ever being computed).

Bit-identity
------------
Results are bit-identical with the scalar uncached path (gated by the
equivalence matrix and property tests): subtraction, multiplication,
``sqrt`` and division round identically in NumPy and CPython, distances are
squared with explicit multiplies on both paths (see
:meth:`Position.distance_to`), and the one operation NumPy's SIMD kernels
are allowed to round differently — ``log10`` — stays on libm inside
:meth:`PathLossModel.path_loss_db_batch`.  Propagation models whose delay
is not a pure function of geometry fall back to a scalar per-pair loop in
:meth:`PropagationModel.delay_s_batch`, which is bit-identical by
construction.  The grid and delta-epoch culls never change a computed
value — they only skip computing entries whose masks are provably
``False`` — and both are A/B-gated by ``ScenarioConfig.spatial_grid`` /
``ScenarioConfig.delta_epochs``.

Memory
------
Row storage is bounded: at most ``row_budget_entries`` cached pair entries
(~``budget * 42`` bytes).  Beyond that — thousand-node ``scale`` sweeps —
rows are evicted least-recently-used; recomputing an evicted row is one
vectorized pass over the candidate set, not a per-pair scalar walk.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple, TYPE_CHECKING

import numpy as np

from ..acoustic.geometry import Position
from ..acoustic.sinr import LinkBudget

if TYPE_CHECKING:  # pragma: no cover
    from ..acoustic.propagation import PropagationModel
    from .channel import ChannelStats
    from .modem import AcousticModem

#: Default cap on cached pair entries across all rows (~170 MB worst case).
DEFAULT_ROW_BUDGET_ENTRIES = 4_000_000

#: Stamp value marking a pair entry that has never been computed.
_NEVER = -1


class RowState:
    """One transmitter's link state against every registered receiver.

    Attributes:
        n: Member count the row was sized for (a membership change makes
            the row unusable and it is rebuilt from scratch).
        idx: The transmitter's member index (epoch lookups for the lazy
            in-reach scalar fix-up in :meth:`VectorLinkKernel.deliveries`).
        total_epoch: Kernel ``total_epoch`` at the last freshness check —
            when it still matches, nothing anywhere moved and the row is
            served without touching any array.
        stamp: Per-pair epoch sums at compute time (staleness detector);
            ``-1`` marks entries never computed (grid-culled).
        disp_stamp: Per-pair ``disp[tx] + disp[rx]`` at compute time —
            the baseline the movement-bounded skip measures drift against.
        distance_m / delay_s / level_db: Pair scalars, aligned with the
            registration order (only candidate entries are ever valid
            when the spatial grid is active).
        in_reach: Delivery reach mask (decode range × interference factor).
        in_decode: Hard communication-range mask (neighbour relation).
        candidates: Sorted member indices in the transmitter's 3x3x3 cell
            neighborhood (``None`` when the grid is disabled: every index
            is a candidate).
        cands_epoch: Kernel ``cells_epoch`` when ``candidates`` was
            gathered; a mismatch forces a re-gather.
        candidate_count: Candidates excluding self (``n - 1`` without the
            grid) — the per-broadcast figure behind ``grid_candidates``.
        deliveries: Lazily built broadcast fan-out list of
            ``(rx_id, modem, delay_s, level_db)`` for in-reach receivers,
            in registration order; invalidated by any refresh.
        skips: Out-of-reach receiver count backing the channel's
            ``out_of_range_skips`` counter (valid once ``deliveries`` is).
        decode_ids: Lazily built tuple of in-decode-range node ids.
        scalars_stale: True while some in-reach entry's scalars were
            skipped by the in-reach delta bound; cleared by the lazy
            fix-up when :meth:`VectorLinkKernel.deliveries` next runs.
        stale_mask: Per-member flags marking exactly the in-reach entries
            the bound skipped (allocated on first skip).  The skip proof
            guarantees those entries' masks did not change, so the cached
            ``deliveries`` list survives the skip and the fix-up patches
            only the flagged positions instead of rebuilding the row's
            fan-out products from scratch.
        delivery_js: Member indices backing ``deliveries``, in order —
            the fix-up's map from flagged entries to list positions.
        delivery_delays: Bulk-schedule product (when enabled): the
            in-reach entries' delays as a contiguous float64 vector,
            aligned with ``deliveries``.
        delivery_callbacks: Bulk-schedule product: the in-reach modems'
            bound ``begin_arrival`` methods, aligned with ``deliveries``.
    """

    __slots__ = (
        "n",
        "idx",
        "total_epoch",
        "stamp",
        "disp_stamp",
        "distance_m",
        "delay_s",
        "level_db",
        "in_reach",
        "in_decode",
        "candidates",
        "cands_epoch",
        "candidate_count",
        "deliveries",
        "skips",
        "decode_ids",
        "scalars_stale",
        "stale_mask",
        "delivery_js",
        "delivery_delays",
        "delivery_callbacks",
    )

    def __init__(self, n: int, idx: int = -1) -> None:
        self.n = n
        self.idx = idx
        self.total_epoch = -1
        self.stamp = np.full(n, _NEVER, dtype=np.int64)
        self.disp_stamp = np.zeros(n, dtype=np.float64)
        self.distance_m = np.empty(n, dtype=np.float64)
        self.delay_s = np.empty(n, dtype=np.float64)
        self.level_db = np.empty(n, dtype=np.float64)
        self.in_reach = np.zeros(n, dtype=bool)
        self.in_decode = np.zeros(n, dtype=bool)
        self.candidates: Optional[np.ndarray] = None
        self.cands_epoch = -1
        self.candidate_count = n - 1
        self.deliveries: Optional[List[Tuple[int, "AcousticModem", float, float]]] = None
        self.skips = 0
        self.decode_ids: Optional[Tuple[int, ...]] = None
        self.scalars_stale = False
        self.stale_mask: Optional[np.ndarray] = None
        self.delivery_js: Optional[np.ndarray] = None
        self.delivery_delays: Optional[np.ndarray] = None
        self.delivery_callbacks: Optional[List[Callable]] = None


class VectorLinkKernel:
    """Struct-of-arrays link-state store with spatial-hash reach culling."""

    __slots__ = (
        "_members",
        "_propagation",
        "_link_budget",
        "_max_range_m",
        "_reach_m",
        "_stats",
        "_ids",
        "_index",
        "_xs",
        "_ys",
        "_zs",
        "_epoch",
        "_disp",
        "_ids_arr",
        "_n",
        "total_epoch",
        "_rows",
        "_row_budget",
        "_max_rows",
        "_lru_active",
        "_use_grid",
        "_use_delta",
        "_use_delta_in",
        "_bulk",
        "_cell_m",
        "_cells",
        "_cell_key",
        "cells_epoch",
    )

    def __init__(
        self,
        members: Dict[int, Tuple["AcousticModem", Callable[[], Position]]],
        propagation: "PropagationModel",
        link_budget: LinkBudget,
        max_range_m: float,
        reach_m: float,
        stats: "ChannelStats",
        row_budget_entries: int = DEFAULT_ROW_BUDGET_ENTRIES,
        use_spatial_grid: bool = True,
        use_delta_epochs: bool = True,
        use_inreach_delta: bool = True,
        build_bulk_products: bool = False,
    ) -> None:
        self._members = members
        self._propagation = propagation
        self._link_budget = link_budget
        self._max_range_m = max_range_m
        self._reach_m = reach_m
        self._stats = stats
        self._ids: List[int] = []
        self._index: Dict[int, int] = {}
        capacity = 64
        self._xs = np.empty(capacity, dtype=np.float64)
        self._ys = np.empty(capacity, dtype=np.float64)
        self._zs = np.empty(capacity, dtype=np.float64)
        self._epoch = np.zeros(capacity, dtype=np.int64)
        self._disp = np.zeros(capacity, dtype=np.float64)
        self._ids_arr = np.empty(capacity, dtype=np.int64)
        self._n = 0
        #: Monotonic sum of every per-node epoch bump (plus registrations);
        #: rows compare against it for the O(1) nothing-moved fast path.
        self.total_epoch = 0
        self._rows: "OrderedDict[int, RowState]" = OrderedDict()
        self._row_budget = row_budget_entries
        self._max_rows = row_budget_entries
        self._lru_active = False
        self._use_grid = use_spatial_grid
        self._use_delta = use_delta_epochs
        self._use_delta_in = use_inreach_delta
        #: Cache the bulk-schedule fan-out products (delay vector + bound
        #: ``begin_arrival`` callbacks) alongside each row's delivery list.
        #: Off unless the owning channel's bulk path can actually use them,
        #: so A/B off-runs do not pay for building them.
        self._bulk = build_bulk_products
        #: Cell side: one reach radius, so a 3x3x3 neighborhood is a strict
        #: superset of the in-reach ball from anywhere inside the center cell.
        self._cell_m = reach_m
        self._cells: Dict[Tuple[int, int, int], List[int]] = {}
        self._cell_key: List[Tuple[int, int, int]] = []
        #: Bumped whenever any node's cell assignment changes (moves across
        #: a cell boundary, registration): rows re-gather candidates only
        #: when this moved, so within-cell drift reuses the gathered set.
        self.cells_epoch = 0
        for node_id in members:
            self.add_node(node_id)

    # ------------------------------------------------------------------
    # Membership and movement
    # ------------------------------------------------------------------
    def _cell_of(self, x: float, y: float, z: float) -> Tuple[int, int, int]:
        cell = self._cell_m
        return (
            int(math.floor(x / cell)),
            int(math.floor(y / cell)),
            int(math.floor(z / cell)),
        )

    def add_node(self, node_id: int) -> None:
        """Register a node, growing the coordinate arrays.

        Bumps :attr:`total_epoch` so cached neighbour sets recompute, and
        existing rows (sized for the old member count) rebuild on next use
        — matching the uncached path, where a freshly registered modem is
        visible to the very next query.
        """
        if node_id in self._index:
            return
        idx = self._n
        if idx == len(self._xs):
            self._grow()
        pos = self._members[node_id][1]()
        self._xs[idx] = pos.x
        self._ys[idx] = pos.y
        self._zs[idx] = pos.z
        self._epoch[idx] = 0
        self._disp[idx] = 0.0
        self._ids_arr[idx] = node_id
        self._ids.append(node_id)
        self._index[node_id] = idx
        self._n = idx + 1
        self.total_epoch += 1
        if self._use_grid:
            key = self._cell_of(pos.x, pos.y, pos.z)
            self._cell_key.append(key)
            self._cells.setdefault(key, []).append(idx)
            self.cells_epoch += 1
            self._stats.grid_cells = len(self._cells)
        self._max_rows = max(16, self._row_budget // self._n)
        self._lru_active = self._n > self._max_rows

    def _grow(self) -> None:
        capacity = len(self._xs) * 2
        for name in ("_xs", "_ys", "_zs", "_epoch", "_disp", "_ids_arr"):
            old = getattr(self, name)
            fresh = np.empty(capacity, dtype=old.dtype)
            fresh[: self._n] = old[: self._n]
            if name in ("_epoch", "_disp"):
                fresh[self._n :] = 0
            setattr(self, name, fresh)

    def _move_node(self, idx: int, pos: Position) -> None:
        """Update one node's coordinates, displacement bound and cell."""
        dx = pos.x - self._xs[idx]
        dy = pos.y - self._ys[idx]
        dz = pos.z - self._zs[idx]
        self._disp[idx] += math.sqrt(dx * dx + dy * dy + dz * dz)
        self._xs[idx] = pos.x
        self._ys[idx] = pos.y
        self._zs[idx] = pos.z
        self._epoch[idx] += 1
        if self._use_grid:
            key = self._cell_of(pos.x, pos.y, pos.z)
            old = self._cell_key[idx]
            if key != old:
                bucket = self._cells[old]
                bucket.remove(idx)
                if not bucket:
                    del self._cells[old]
                self._cells.setdefault(key, []).append(idx)
                self._cell_key[idx] = key
                self.cells_epoch += 1
                self._stats.grid_cells = len(self._cells)

    def invalidate(self, node_id: Optional[int] = None) -> None:
        """Note that ``node_id`` moved (or, with ``None``, that anything
        may have: every epoch bumps and every position is re-read)."""
        if node_id is None:
            n = self._n
            members = self._members
            ids = self._ids
            for idx in range(n):
                self._move_node(idx, members[ids[idx]][1]())
            # _move_node bumps only genuinely moved epochs via coordinates?
            # No: it bumps unconditionally, which is exactly the conservative
            # contract of a global invalidation.
            self.total_epoch += 1
            return
        idx = self._index[node_id]
        self._move_node(idx, self._members[node_id][1]())
        self.total_epoch += 1

    # ------------------------------------------------------------------
    # Row access
    # ------------------------------------------------------------------
    def row(self, node_id: int) -> RowState:
        """Fresh link-state row for transmitter ``node_id``.

        Fast path — nothing anywhere moved since the last check — is two
        integer comparisons.  Otherwise stale pairs are recomputed in one
        vectorized pass over exactly the dirty entries of the candidate
        set (every entry, when the spatial grid is disabled).
        """
        idx = self._index[node_id]
        rows = self._rows
        row = rows.get(idx)
        n = self._n
        stats = self._stats
        if row is not None and row.n == n:
            if self._lru_active:
                rows.move_to_end(idx)
            if row.total_epoch == self.total_epoch:
                stats.cache_hits += n - 1
                return row
            self._refresh(idx, row)
            return row
        if row is not None:
            del rows[idx]
        row = self._build(idx)
        rows[idx] = row
        if self._lru_active and len(rows) > self._max_rows:
            rows.popitem(last=False)
        return row

    def _candidates_for(self, idx: int) -> np.ndarray:
        """Sorted member indices in the 3x3x3 neighborhood of ``idx``'s cell.

        A strict superset of every node within ``reach_m`` of the
        transmitter (cell side == reach), finished by the exact distance
        mask in :meth:`_compute`; always contains ``idx`` itself.
        """
        cx, cy, cz = self._cell_key[idx]
        out: List[int] = []
        get = self._cells.get
        for kx in (cx - 1, cx, cx + 1):
            for ky in (cy - 1, cy, cy + 1):
                bucket = get((kx, ky, cz - 1))
                if bucket:
                    out.extend(bucket)
                bucket = get((kx, ky, cz))
                if bucket:
                    out.extend(bucket)
                bucket = get((kx, ky, cz + 1))
                if bucket:
                    out.extend(bucket)
        cands = np.array(out, dtype=np.intp)
        cands.sort()
        return cands

    def _compute(
        self,
        idx: int,
        row: RowState,
        targets: np.ndarray,
        keep_products: bool = False,
    ) -> None:
        """Vectorized pass filling ``row`` at ``targets`` (member indices).

        Also stamps the computed pairs' epoch sums and displacement
        baselines, so every compute path (build, refresh, on-demand point
        query) maintains the staleness detectors identically.

        ``keep_products`` is for callers holding a masks-stable proof —
        the lazy in-reach fix-up and point queries on a fresh row, where
        every recomputed entry is either a skip (masks proven unchanged)
        or provably out of reach (grid cull / out-of-reach bound).  The
        derived products (``deliveries``, ``decode_ids``, the bulk
        vectors) are membership functions of the masks, so they survive
        such a recompute; the caller patches any stale scalar copies.
        """
        xs, ys, zs = self._xs, self._ys, self._zs
        x0, y0, z0 = xs[idx], ys[idx], zs[idx]
        dx = xs[targets] - x0
        dy = ys[targets] - y0
        dz = zs[targets] - z0
        dist = np.sqrt(dx * dx + dy * dy + dz * dz)
        origin = Position(float(x0), float(y0), float(z0))
        row.distance_m[targets] = dist
        row.delay_s[targets] = self._propagation.delay_s_batch(
            origin,
            xs[targets],
            ys[targets],
            zs[targets],
            dist,
            self._ids[idx],
            self._ids_arr[targets],
        )
        row.level_db[targets] = self._link_budget.received_level_db_batch(dist)
        row.in_reach[targets] = dist <= self._reach_m
        row.in_decode[targets] = dist <= self._max_range_m
        row.stamp[targets] = self._epoch[idx] + self._epoch[targets]
        row.disp_stamp[targets] = self._disp[idx] + self._disp[targets]
        # The self pair is never delivered to and never queried.
        row.in_reach[idx] = False
        row.in_decode[idx] = False
        if not keep_products:
            row.deliveries = None
            row.decode_ids = None
            row.delivery_js = None
            row.delivery_delays = None
            row.delivery_callbacks = None
        self._stats.vector_batches += 1

    def _build(self, idx: int) -> RowState:
        n = self._n
        row = RowState(n, idx)
        if self._use_grid:
            cands = self._candidates_for(idx)
            row.candidates = cands
            row.cands_epoch = self.cells_epoch
            row.candidate_count = len(cands) - 1
            self._compute(idx, row, cands)
            self._stats.cache_misses += len(cands) - 1
        else:
            self._compute(idx, row, np.arange(n))
            self._stats.cache_misses += n - 1
        row.total_epoch = self.total_epoch
        return row

    def _refresh(self, idx: int, row: RowState) -> None:
        n = self._n
        stats = self._stats
        if self._use_grid:
            cands = row.candidates
            if row.cands_epoch != self.cells_epoch:
                cands = self._candidates_for(idx)
                departed = np.setdiff1d(row.candidates, cands, assume_unique=True)
                if departed.size:
                    # A node that left the neighborhood is provably out of
                    # reach; clear its (possibly stale-True) masks and mark
                    # its entry never-computed so re-entry recomputes.
                    row.in_reach[departed] = False
                    row.in_decode[departed] = False
                    row.stamp[departed] = _NEVER
                    row.deliveries = None
                    row.decode_ids = None
                    row.delivery_js = None
                    row.delivery_delays = None
                    row.delivery_callbacks = None
                row.candidates = cands
                row.cands_epoch = self.cells_epoch
                row.candidate_count = len(cands) - 1
            expected = self._epoch[idx] + self._epoch[cands]
            stale = row.stamp[cands] != expected
            stale[np.searchsorted(cands, idx)] = False
            dirty = cands[stale]
        else:
            expected = self._epoch[idx] + self._epoch[:n]
            stale = row.stamp != expected
            stale[idx] = False
            dirty = np.nonzero(stale)[0]
        if dirty.size and (self._use_delta or self._use_delta_in):
            # Movement-bounded skips: the accumulated motion of both
            # endpoints since a pair's compute bounds |d_now - d_cached|
            # (triangle inequality), so a pair cached farther from a mask
            # boundary than that bound cannot have crossed it.
            motion = (self._disp[idx] + self._disp[dirty]) - row.disp_stamp[dirty]
            dist = row.distance_m[dirty]
            known = row.stamp[dirty] != _NEVER
            skip: Optional[np.ndarray] = None
            if self._use_delta:
                # Outside delivery reach by more than the motion bound:
                # both masks are provably still False and nothing else of
                # the entry is read while it stays out of reach.
                skip = known & (dist - self._reach_m > motion)
                skipped = int(np.count_nonzero(skip))
                if skipped:
                    stats.rows_skipped_delta += skipped
            if self._use_delta_in:
                max_r = self._max_range_m
                # Deeper inside the decode range than the motion bound:
                # both masks provably stay True.  With an interference
                # annulus (reach > decode range), an entry farther from
                # *both* boundaries than the bound stays interference-only
                # (in_reach True, in_decode False).
                skip_in = known & (max_r - dist > motion)
                if self._reach_m > max_r:
                    skip_in |= (
                        known
                        & (dist - max_r > motion)
                        & (self._reach_m - dist > motion)
                    )
                skipped_in = int(np.count_nonzero(skip_in))
                if skipped_in:
                    stats.rows_skipped_inreach += skipped_in
                    # Masks are proven stable but the deferred entries'
                    # delay/level scalars are now stale; flag exactly
                    # those entries so the lazy fix-up in deliveries()
                    # patches them in place.  Mask-only products and the
                    # cached fan-out list itself stay live — membership
                    # cannot have changed, only the flagged scalars.
                    # Deferral pays off when the row is refreshed again
                    # before its next broadcast (several refreshes' worth
                    # of deferred entries collapse into one fix-up batch)
                    # or when the row is never broadcast again at all.
                    mask = row.stale_mask
                    if mask is None:
                        mask = row.stale_mask = np.zeros(n, dtype=bool)
                    mask[dirty[skip_in]] = True
                    row.scalars_stale = True
                    skip = skip_in if skip is None else skip | skip_in
            if skip is not None and skip.any():
                dirty = dirty[~skip]
        if dirty.size:
            self._compute(idx, row, dirty)
            stats.rows_refreshed += 1
            stats.cache_misses += int(dirty.size)
            stats.cache_hits += n - 1 - int(dirty.size)
        else:
            stats.cache_hits += n - 1
        row.total_epoch = self.total_epoch

    def ensure_pair(self, row: RowState, tx_idx: int, rx_idx: int) -> None:
        """Validate one pair entry for a point query, recomputing on demand.

        Whole-row freshness (:meth:`row`) guarantees masks, but with the
        spatial grid or delta-epoch culls active an out-of-reach pair's
        scalar fields (distance, delay, level) may be stale or never
        computed.  Point queries (``link()``/``distance_m``) call this to
        recompute exactly that entry — one single-element vectorized pass,
        bit-identical with the batch path by construction.

        Only rows fresh from :meth:`row` reach here, so a stale entry is
        always a proven-stable-mask skip (grid cull, out-of-reach bound or
        in-reach bound) — the derived products survive the recompute.  An
        in-reach-skipped entry stays flagged in ``stale_mask``, so a
        cached fan-out list still holding its old scalars is patched by
        the next :meth:`deliveries` fix-up, not served stale.
        """
        if row.stamp[rx_idx] != self._epoch[tx_idx] + self._epoch[rx_idx]:
            self._compute(
                tx_idx, row, np.array([rx_idx], dtype=np.intp), keep_products=True
            )
            self._stats.cache_misses += 1

    # ------------------------------------------------------------------
    # Derived per-row products
    # ------------------------------------------------------------------
    def deliveries(
        self, row: RowState
    ) -> List[Tuple[int, "AcousticModem", float, float]]:
        """Broadcast fan-out list for a fresh row (built once per refresh).

        Entries are ``(rx_id, modem, delay_s, level_db)`` python scalars in
        registration order — exactly the values and order the scalar loop
        produced — so the hot loop does no NumPy access per delivery.

        If the in-reach delta bound deferred any in-reach recomputes
        (``scalars_stale``), they are fixed up here first: exactly the
        deferred entries get one vectorized recompute, restoring
        bit-identity before any scalar is read.  The skip proof guarantees
        the recompute cannot change either mask, so membership — and with
        it the cached list, ``decode_ids`` and the bulk products — all
        survive: a cached list is *patched* at the flagged positions
        rather than rebuilt.

        When bulk-schedule products are enabled, the in-reach delay vector
        and the bound ``begin_arrival`` callbacks are cached alongside the
        list for the channel's batched fan-out.
        """
        built = row.deliveries
        if built is not None:
            if row.scalars_stale:
                self._patch_deliveries(row, built)
            return built
        js = np.nonzero(row.in_reach)[0]
        if row.scalars_stale:
            stale = js[row.stamp[js] != self._epoch[row.idx] + self._epoch[js]]
            if stale.size:
                self._compute(row.idx, row, stale, keep_products=True)
                self._stats.cache_misses += int(stale.size)
            if row.stale_mask is not None:
                row.stale_mask.fill(False)
            row.scalars_stale = False
        members = self._members
        ids = self._ids
        delays = row.delay_s
        levels = row.level_db
        built = [
            (ids[j], members[ids[j]][0], float(delays[j]), float(levels[j]))
            for j in js.tolist()
        ]
        row.deliveries = built
        row.delivery_js = js
        row.skips = row.n - 1 - len(built)
        if self._bulk:
            row.delivery_delays = delays[js]
            row.delivery_callbacks = [t[1].begin_arrival for t in built]
        return built

    def _patch_deliveries(
        self, row: RowState, built: List[Tuple[int, "AcousticModem", float, float]]
    ) -> None:
        """In-place fix-up of a cached fan-out list after in-reach skips.

        Membership is proven unchanged, so only the flagged positions'
        scalars can be stale: recompute whichever flagged entries still
        carry stale stamps (a point query may have refreshed some
        already), then rewrite exactly those list entries — and their
        bulk delay slots — from the now-current arrays.
        """
        js = row.delivery_js
        mask = row.stale_mask
        pos = np.nonzero(mask[js])[0]
        if pos.size:
            stale_js = js[pos]
            need = stale_js[
                row.stamp[stale_js] != self._epoch[row.idx] + self._epoch[stale_js]
            ]
            if need.size:
                self._compute(row.idx, row, need, keep_products=True)
                self._stats.cache_misses += int(need.size)
            delays = row.delay_s
            levels = row.level_db
            for p, j in zip(pos.tolist(), stale_js.tolist()):
                old = built[p]
                built[p] = (old[0], old[1], float(delays[j]), float(levels[j]))
            if row.delivery_delays is not None:
                row.delivery_delays[pos] = delays[stale_js]
            mask[stale_js] = False
        row.scalars_stale = False

    def decode_ids(self, row: RowState) -> Tuple[int, ...]:
        """Ids within hard decode range, in registration order."""
        ids = row.decode_ids
        if ids is None:
            members_ids = self._ids
            ids = tuple(
                members_ids[j] for j in np.nonzero(row.in_decode)[0].tolist()
            )
            row.decode_ids = ids
        return ids

    def index_of(self, node_id: int) -> int:
        return self._index[node_id]
