"""Frames exchanged by UASN MAC protocols.

The paper's packet vocabulary (Table 1): RTS, CTS, Data, Ack for negotiated
communication; EXR, EXC, EXData, EXAck for EW-MAC's extra communications;
Hello for neighbour initialization.  ROPA adds RTA (reverse appending
request).  All control packets are the same size (64 bits, Table 2); data
packets are variable (1024-4096 bits).

Per paper Sec. 4.3, *every* frame carries the sender's transmission
timestamp so receivers can maintain one-hop propagation delays; negotiation
frames additionally announce the pair's propagation delay so overhearers
can schedule around the exchange.
"""

from __future__ import annotations

import itertools
import threading
from enum import Enum
from typing import Any, Dict, Optional

#: Control packet size in bits (paper Table 2).
CONTROL_PACKET_BITS = 64
#: Default data packet size in bits (paper Sec. 5).
DEFAULT_DATA_PACKET_BITS = 2048

#: Broadcast address (Hello packets).
BROADCAST = -1

_uid_counter = itertools.count(1)
_uid_lock = threading.Lock()


def sample_frame_uid_floor() -> int:
    """Consume and return one frame uid as a checkpoint floor.

    Frame uids are tracing/dedup identifiers: only uniqueness within a
    run matters, never the absolute value.  Checkpoints record this floor
    so :func:`advance_frame_uids` can keep a resumed run's fresh frames
    from colliding with pre-snapshot ones after the module counter
    restarted in a new process.
    """
    with _uid_lock:
        return next(_uid_counter)


def advance_frame_uids(floor: int) -> None:
    """Ensure future frame uids are strictly greater than ``floor``."""
    global _uid_counter
    with _uid_lock:
        current = next(_uid_counter)
        _uid_counter = itertools.count(max(current, int(floor)) + 1)


class FrameType(Enum):
    """All frame kinds used by the implemented protocols."""

    HELLO = "HELLO"
    RTS = "RTS"
    CTS = "CTS"
    DATA = "DATA"
    ACK = "ACK"
    # EW-MAC extra communication (paper Sec. 4.2)
    EXR = "EXR"
    EXC = "EXC"
    EXDATA = "EXDATA"
    EXACK = "EXACK"
    # ROPA reverse appending
    RTA = "RTA"
    # Periodic neighbour-maintenance broadcasts (ROPA / CS-MAC two-hop upkeep)
    NEIGH = "NEIGH"

    @property
    def is_control(self) -> bool:
        return self not in (FrameType.DATA, FrameType.EXDATA)

    @property
    def is_data(self) -> bool:
        return self in (FrameType.DATA, FrameType.EXDATA)

    @property
    def is_extra(self) -> bool:
        """True for EW-MAC extra-communication frames (sent off slot start)."""
        return self in (FrameType.EXR, FrameType.EXC, FrameType.EXDATA, FrameType.EXACK)


class Frame:
    """One over-the-air frame.

    A plain ``__slots__`` class rather than a dataclass: frames are created
    for every handshake step and copied on retry, and the slotted layout
    keeps allocation and field access on the broadcast/decode hot path
    cheap (``slots=True`` dataclasses need Python >= 3.10, below this
    repo's floor).

    Attributes:
        ftype: Frame kind.
        src: Sender node id.
        dst: Destination node id (BROADCAST for Hello/NEIGH).
        size_bits: On-air size; transmit duration = size_bits / bitrate.
        timestamp: Simulation time the frame transmission *started* (paper:
            "the sending time stamp is included in each sent packet").
        pair_delay_s: Propagation delay between the negotiating pair, echoed
            on CTS/EXC so overhearers can schedule (paper Fig. 4: CTS carries
            tau_jk).  None when not applicable.
        info: Protocol-specific extras (rp priority, announced data bits,
            appended-window lengths, two-hop digests, ...).
        uid: Unique frame id for tracing and dedup.
    """

    __slots__ = (
        "ftype",
        "src",
        "dst",
        "size_bits",
        "timestamp",
        "pair_delay_s",
        "info",
        "uid",
    )

    def __init__(
        self,
        ftype: FrameType,
        src: int,
        dst: int,
        size_bits: int = CONTROL_PACKET_BITS,
        timestamp: float = 0.0,
        pair_delay_s: Optional[float] = None,
        info: Optional[Dict[str, Any]] = None,
        uid: Optional[int] = None,
    ) -> None:
        self.ftype = ftype
        self.src = src
        self.dst = dst
        self.size_bits = size_bits
        self.timestamp = timestamp
        self.pair_delay_s = pair_delay_s
        self.info = {} if info is None else info
        self.uid = next(_uid_counter) if uid is None else uid

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Frame(ftype={self.ftype!r}, src={self.src!r}, dst={self.dst!r}, "
            f"size_bits={self.size_bits!r}, timestamp={self.timestamp!r}, "
            f"pair_delay_s={self.pair_delay_s!r}, info={self.info!r}, uid={self.uid!r})"
        )

    def duration_s(self, bitrate_bps: float) -> float:
        """On-air duration at the given channel bitrate."""
        if bitrate_bps <= 0:
            raise ValueError("bitrate must be positive")
        return self.size_bits / bitrate_bps

    def describe(self) -> str:
        """Short human-readable id, e.g. ``RTS 3->7``."""
        dst = "bcast" if self.dst == BROADCAST else str(self.dst)
        return f"{self.ftype.value} {self.src}->{dst}"

    def copy_for_retry(self) -> "Frame":
        """Fresh-uid copy (retransmissions are distinct over-the-air events)."""
        return Frame(
            ftype=self.ftype,
            src=self.src,
            dst=self.dst,
            size_bits=self.size_bits,
            timestamp=self.timestamp,
            pair_delay_s=self.pair_delay_s,
            info=dict(self.info),
        )


def safe_bits(value: Any, default: int = CONTROL_PACKET_BITS, minimum: int = 1) -> int:
    """Parse a bit-count field from a (possibly corrupted) frame.

    Over-the-air metadata cannot be trusted; a node must never crash on a
    malformed field.  Non-numeric or sub-minimum values fall back.
    """
    try:
        bits = int(value)
    except (TypeError, ValueError, OverflowError):  # inf overflows int()
        return default
    return bits if bits >= minimum else default


def safe_float(value: Any) -> Optional[float]:
    """Parse a float field from a frame; None when malformed."""
    if isinstance(value, bool) or value is None:
        return None
    try:
        result = float(value)
    except (TypeError, ValueError):
        return None
    return result if result == result else None  # reject NaN


def safe_links(value: Any) -> list:
    """Parse a neighbour-link list field: [(node_id, delay_s), ...]."""
    if not isinstance(value, (list, tuple)):
        return []
    links = []
    for item in value:
        if not isinstance(item, (list, tuple)) or len(item) != 2:
            continue
        node_id = safe_bits(item[0], default=-1, minimum=0)
        delay = safe_float(item[1])
        if node_id >= 0 and delay is not None and delay >= 0.0:
            links.append((node_id, delay))
    return links


def control_frame(
    ftype: FrameType,
    src: int,
    dst: int,
    timestamp: float,
    pair_delay_s: Optional[float] = None,
    **info: Any,
) -> Frame:
    """Convenience constructor for 64-bit control frames."""
    if not ftype.is_control:
        raise ValueError(f"{ftype} is not a control frame type")
    return Frame(
        ftype=ftype,
        src=src,
        dst=dst,
        size_bits=CONTROL_PACKET_BITS,
        timestamp=timestamp,
        pair_delay_s=pair_delay_s,
        info=info,
    )


def data_frame(
    src: int,
    dst: int,
    timestamp: float,
    size_bits: int = DEFAULT_DATA_PACKET_BITS,
    extra: bool = False,
    **info: Any,
) -> Frame:
    """Convenience constructor for DATA / EXDATA frames."""
    if size_bits <= 0:
        raise ValueError("data size must be positive")
    return Frame(
        ftype=FrameType.EXDATA if extra else FrameType.DATA,
        src=src,
        dst=dst,
        size_bits=size_bits,
        timestamp=timestamp,
        info=info,
    )
