"""Epoch-invalidated cache of pairwise link state.

Every MAC handshake (RTS/CTS/Data/Ack plus EW-MAC's EXR/EXC/EXData/EXAck)
triggers an :class:`~repro.phy.channel.AcousticChannel.broadcast` that
needs, per receiver, the pair's distance, propagation delay and received
level — and depth routing asks for neighbour sets per packet.  All of that
is pure geometry: it only changes when a node actually moves.  Table 2
deployments are static between mobility ticks (and entirely static with
``mobility=False``), so the channel recomputed identical ``sqrt`` /
``log10`` chains tens of thousands of times per 300 s cell.

:class:`LinkStateCache` memoizes the full link state per *ordered* node
pair, lazily, and invalidates on a **position epoch** counter:

* :meth:`~repro.net.node.Node`'s position setter bumps the epoch whenever
  a node's position actually changes (the
  :class:`~repro.topology.mobility.MobilityManager` routes every movement
  through it), so static deployments compute each pair exactly once;
* registering a new modem also bumps the epoch, so topology growth is
  reflected immediately, matching the uncached semantics.

Ordered (rather than unordered) pair keys keep results bit-identical with
the uncached path: :meth:`PropagationModel.delay_s` receives ``pair=(a, b)``
in exactly the order the uncached code passed it.

Liveness (``modem.enabled``) is deliberately *not* part of the cached
state: failure injection flips it without moving anyone, so neighbour
queries filter on it at read time instead of invalidating geometry.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple, TYPE_CHECKING

from ..acoustic.geometry import Position
from ..acoustic.sinr import LinkBudget

if TYPE_CHECKING:  # pragma: no cover
    from ..acoustic.propagation import PropagationModel
    from .channel import ChannelStats
    from .modem import AcousticModem


class LinkState:
    """Cached geometry-derived state of one directed link.

    Attributes:
        distance_m: Euclidean distance between the pair.
        delay_s: Propagation delay (tx -> rx), from the channel's model.
        level_db: Received level at the rx from the link budget (before
            any time-varying fading).
        in_reach: Within delivery reach (decode range x interference
            factor): the frame's energy arrives at all.
        in_decode_range: Within the hard communication range (Table 2:
            1.5 km): the rx counts as a one-hop neighbour.
    """

    __slots__ = ("distance_m", "delay_s", "level_db", "in_reach", "in_decode_range")

    def __init__(
        self,
        distance_m: float,
        delay_s: float,
        level_db: float,
        in_reach: bool,
        in_decode_range: bool,
    ) -> None:
        self.distance_m = distance_m
        self.delay_s = delay_s
        self.level_db = level_db
        self.in_reach = in_reach
        self.in_decode_range = in_decode_range


class LinkStateCache:
    """Lazy per-pair link state, invalidated by a position epoch counter.

    The cache shares the channel's live member registry (``node_id ->
    (modem, position_fn)``), so late modem registrations are visible; the
    channel bumps :attr:`epoch` via :meth:`invalidate` whenever positions
    or membership change.  Hits and misses are counted into the owning
    channel's :class:`~repro.phy.channel.ChannelStats` for the perf layer.
    """

    __slots__ = (
        "_members",
        "_propagation",
        "_link_budget",
        "_max_range_m",
        "_reach_m",
        "_stats",
        "epoch",
        "_cache_epoch",
        "_links",
        "_in_range",
    )

    def __init__(
        self,
        members: Dict[int, Tuple["AcousticModem", Callable[[], Position]]],
        propagation: "PropagationModel",
        link_budget: LinkBudget,
        max_range_m: float,
        reach_m: float,
        stats: "ChannelStats",
    ) -> None:
        self._members = members
        self._propagation = propagation
        self._link_budget = link_budget
        self._max_range_m = max_range_m
        self._reach_m = reach_m
        self._stats = stats
        #: Bumped by the channel on movement/registration; compared against
        #: the epoch the cached entries were computed under.
        self.epoch = 0
        self._cache_epoch = 0
        self._links: Dict[Tuple[int, int], LinkState] = {}
        self._in_range: Dict[int, Tuple[int, ...]] = {}

    # ------------------------------------------------------------------
    def invalidate(self) -> None:
        """Note that some position (or the member set) changed."""
        self.epoch += 1

    def _sync(self) -> None:
        if self._cache_epoch != self.epoch:
            self._links.clear()
            self._in_range.clear()
            self._cache_epoch = self.epoch

    # ------------------------------------------------------------------
    def link(self, tx: int, rx: int) -> LinkState:
        """Link state for the directed pair, computed at most once per epoch."""
        self._sync()
        key = (tx, rx)
        state = self._links.get(key)
        if state is None:
            self._stats.cache_misses += 1
            members = self._members
            tx_pos = members[tx][1]()
            rx_pos = members[rx][1]()
            distance = tx_pos.distance_to(rx_pos)
            state = LinkState(
                distance,
                self._propagation.delay_s(tx_pos, rx_pos, pair=key),
                self._link_budget.received_level_db(distance),
                distance <= self._reach_m,
                distance <= self._max_range_m,
            )
            self._links[key] = state
        else:
            self._stats.cache_hits += 1
        return state

    def in_range_ids(self, node_id: int) -> Tuple[int, ...]:
        """Ids inside decode range of ``node_id`` (liveness *not* applied).

        Preserves the member-registration order the uncached scan produced.
        """
        self._sync()
        ids = self._in_range.get(node_id)
        if ids is None:
            ids = tuple(
                other
                for other in self._members
                if other != node_id and self.link(node_id, other).in_decode_range
            )
            self._in_range[node_id] = ids
        return ids
