"""Link-state cache facade with **per-node** position epochs.

Every MAC handshake (RTS/CTS/Data/Ack plus EW-MAC's EXR/EXC/EXData/EXAck)
triggers an :class:`~repro.phy.channel.AcousticChannel.broadcast` that
needs, per receiver, the pair's distance, propagation delay and received
level — and depth routing asks for neighbour sets per packet.  All of that
is pure geometry: it only changes when a node actually moves.

The first cache generation invalidated on a single *global* epoch: any
movement anywhere discarded every cached pair, so a mobility tick that
moved a handful of nodes still forced the whole deployment cold (~25% hit
rate on mobile Table 2 cells).  This generation keeps **one epoch per
node** inside a NumPy struct-of-arrays kernel
(:class:`~repro.phy.vectorized.VectorLinkKernel`):

* a pair's cached entry records ``epoch[tx] + epoch[rx]`` at compute time;
  epochs are monotonic, so the stamp matches the current sum *iff neither
  endpoint has moved* — un-moved pairs stay warm across mobility ticks;
* :meth:`~repro.net.node.Node`'s position setter bumps only the moved
  node's epoch (the :class:`~repro.topology.mobility.MobilityManager`
  routes every movement through it), so static deployments compute each
  pair exactly once and mobile ones recompute exactly the moved
  rows/columns;
* registering a new modem appends to the kernel arrays and bumps the
  aggregate epoch, so topology growth is reflected immediately, matching
  the uncached semantics;
* a per-row ``total_epoch`` snapshot gives broadcasts an O(1) "nothing
  anywhere moved" fast path before any per-pair staleness check.

Directed (tx, rx) ordering is preserved throughout — rows are per
transmitter and :meth:`PropagationModel.delay_s` still receives
``pair=(tx, rx)`` in exactly the order the uncached code passed it — which
keeps results bit-identical with the uncached path (gated by the
equivalence-matrix and Hypothesis property tests).

Liveness (``modem.enabled``) is deliberately *not* part of the cached
state: failure injection flips it without moving anyone, so neighbour
queries filter on it at read time instead of invalidating geometry.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple, TYPE_CHECKING

from ..acoustic.geometry import Position
from ..acoustic.sinr import LinkBudget
from .vectorized import RowState, VectorLinkKernel

if TYPE_CHECKING:  # pragma: no cover
    from ..acoustic.propagation import PropagationModel
    from .channel import ChannelStats
    from .modem import AcousticModem


class LinkState:
    """Geometry-derived state of one directed link (a scalar view).

    Attributes:
        distance_m: Euclidean distance between the pair.
        delay_s: Propagation delay (tx -> rx), from the channel's model.
        level_db: Received level at the rx from the link budget (before
            any time-varying fading).
        in_reach: Within delivery reach (decode range x interference
            factor): the frame's energy arrives at all.
        in_decode_range: Within the hard communication range (Table 2:
            1.5 km): the rx counts as a one-hop neighbour.
    """

    __slots__ = ("distance_m", "delay_s", "level_db", "in_reach", "in_decode_range")

    def __init__(
        self,
        distance_m: float,
        delay_s: float,
        level_db: float,
        in_reach: bool,
        in_decode_range: bool,
    ) -> None:
        self.distance_m = distance_m
        self.delay_s = delay_s
        self.level_db = level_db
        self.in_reach = in_reach
        self.in_decode_range = in_decode_range


class LinkStateCache:
    """Facade exposing the vector kernel under the original cache API.

    The cache shares the channel's live member registry (``node_id ->
    (modem, position_fn)``); the channel reports movement through
    :meth:`invalidate` (per node, or globally with ``None``) and
    registration through :meth:`add_node`.  Hits and misses are counted
    into the owning channel's :class:`~repro.phy.channel.ChannelStats` for
    the perf layer, now with whole-row granularity: a broadcast whose row
    is warm counts ``n - 1`` hits, a refresh counts one miss per stale
    pair and one hit per still-warm pair.
    """

    __slots__ = ("_kernel",)

    def __init__(
        self,
        members: Dict[int, Tuple["AcousticModem", Callable[[], Position]]],
        propagation: "PropagationModel",
        link_budget: LinkBudget,
        max_range_m: float,
        reach_m: float,
        stats: "ChannelStats",
        use_spatial_grid: bool = True,
        use_delta_epochs: bool = True,
        use_inreach_delta: bool = True,
        build_bulk_products: bool = False,
    ) -> None:
        self._kernel = VectorLinkKernel(
            members,
            propagation,
            link_budget,
            max_range_m,
            reach_m,
            stats,
            use_spatial_grid=use_spatial_grid,
            use_delta_epochs=use_delta_epochs,
            use_inreach_delta=use_inreach_delta,
            build_bulk_products=build_bulk_products,
        )

    @property
    def epoch(self) -> int:
        """Aggregate position epoch (sum of all per-node bumps)."""
        return self._kernel.total_epoch

    # ------------------------------------------------------------------
    def invalidate(self, node_id: Optional[int] = None) -> None:
        """Note that ``node_id`` moved, or with ``None`` that any position
        may have changed (every node's epoch bumps, positions re-read)."""
        self._kernel.invalidate(node_id)

    def add_node(self, node_id: int) -> None:
        """Register a newly created modem's node with the kernel."""
        self._kernel.add_node(node_id)

    # ------------------------------------------------------------------
    def link(self, tx: int, rx: int) -> LinkState:
        """Link state for the directed pair (served from the tx's row).

        With the spatial grid or delta-epoch culls active, a whole-row
        freshness pass guarantees the masks but may leave an out-of-reach
        pair's scalars stale or never computed; the per-pair stamp check
        in :meth:`VectorLinkKernel.ensure_pair` recomputes exactly that
        entry on demand, so point queries stay exact for *any* pair.
        """
        kernel = self._kernel
        row = kernel.row(tx)
        tx_idx = kernel.index_of(tx)
        j = kernel.index_of(rx)
        kernel.ensure_pair(row, tx_idx, j)
        return LinkState(
            float(row.distance_m[j]),
            float(row.delay_s[j]),
            float(row.level_db[j]),
            bool(row.in_reach[j]),
            bool(row.in_decode[j]),
        )

    def in_range_ids(self, node_id: int) -> Tuple[int, ...]:
        """Ids inside decode range of ``node_id`` (liveness *not* applied).

        Preserves the member-registration order the uncached scan produced.
        """
        kernel = self._kernel
        return kernel.decode_ids(kernel.row(node_id))

    # ------------------------------------------------------------------
    def broadcast_row(self, tx_id: int) -> RowState:
        """Fresh whole-row link state for a transmission (hot path)."""
        return self._kernel.row(tx_id)

    def deliveries(
        self, row: RowState
    ) -> List[Tuple[int, "AcousticModem", float, float]]:
        """In-reach fan-out list ``(rx_id, modem, delay_s, level_db)``."""
        return self._kernel.deliveries(row)
