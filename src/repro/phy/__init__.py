"""PHY layer: frames, half-duplex modems and the broadcast channel."""

from .channel import DEFAULT_BITRATE_BPS, DEFAULT_RANGE_M, AcousticChannel, ChannelStats
from .frame import (
    BROADCAST,
    CONTROL_PACKET_BITS,
    DEFAULT_DATA_PACKET_BITS,
    Frame,
    FrameType,
    control_frame,
    data_frame,
)
from .modem import AcousticModem, Arrival, ModemStats, RxOutcome

__all__ = [
    "AcousticChannel",
    "AcousticModem",
    "Arrival",
    "BROADCAST",
    "CONTROL_PACKET_BITS",
    "ChannelStats",
    "DEFAULT_BITRATE_BPS",
    "DEFAULT_DATA_PACKET_BITS",
    "DEFAULT_RANGE_M",
    "Frame",
    "FrameType",
    "ModemStats",
    "RxOutcome",
    "control_frame",
    "data_frame",
]
