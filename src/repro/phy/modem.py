"""Half-duplex acoustic modem.

Implements the paper's antenna constraints (Sec. 3.2):

* "a sensor cannot transmit and receive simultaneously" — any arrival that
  overlaps one of this modem's transmissions is lost (HALF_DUPLEX);
* "the antenna remains in the receive state when it is not transmitting" —
  the modem always listens, and the attached MAC receives *every*
  successfully decoded frame, addressed to it or not (overhearing is how
  all four protocols learn about neighbours' negotiations);
* "the collision occurs when two or more packets arrive at a sensor at the
  same time" — overlapping arrivals interfere; the SINR/PER models decide
  whether either survives (with the default threshold model, overlap of
  comparable-power arrivals destroys both).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, List, Optional, TYPE_CHECKING

import numpy as np

from ..des.simulator import Simulator
from .frame import Frame

if TYPE_CHECKING:  # pragma: no cover
    from .channel import AcousticChannel

#: Overlap scans over fewer pending arrivals than this stay on the plain
#: list comprehension: below it, NumPy's fixed per-call overhead costs more
#: than it saves.  Both paths are bit-identical (same comparisons, same
#: level values, same order), so the threshold is purely a speed knob.
VECTOR_SCAN_MIN = 16

#: Default cap on the shared Arrival free-list (see
#: ``AcousticChannel.arrival_pool``); per-channel via the
#: ``arrival_pool_cap`` constructor argument / ``ScenarioConfig`` field.
ARRIVAL_POOL_CAP = 4096


class RxOutcome(Enum):
    """Why an arrival was or was not decoded."""

    OK = "ok"
    HALF_DUPLEX = "half_duplex"
    COLLISION = "collision"
    NOISE = "noise"
    OFFLINE = "offline"  # modem dead or RX chain in an injected outage


@dataclass
class Arrival:
    """One signal arriving at a modem.

    A broadcast fans one Arrival out per in-range receiver, so these are
    the most-allocated objects in a simulation after events; ``__slots__``
    (declared manually for Python 3.9 compatibility) keeps them small and
    their field reads cheap in the overlap scans.

    Attributes:
        frame: The frame carried by the signal.
        src: Transmitting node id.
        start: Arrival start time (tx start + propagation delay).
        end: Arrival end time (start + on-air duration).
        level_db: Received signal level at this modem.
        delay_s: One-way propagation delay the signal experienced.

    The extra ``_slot`` slot (not a dataclass field) is the arrival's index
    in its receiving modem's pending list, kept aligned with the modem's
    parallel start/end/level arrays so the vectorized interferer scan can
    exclude the arrival itself by position in O(1).
    """

    __slots__ = ("frame", "src", "start", "end", "level_db", "delay_s", "_slot")

    frame: Frame
    src: int
    start: float
    end: float
    level_db: float
    delay_s: float


@dataclass
class ModemStats:
    """Per-modem counters consumed by the metrics layer."""

    tx_frames: int = 0
    tx_bits: int = 0
    tx_time_s: float = 0.0
    rx_ok: int = 0
    rx_ok_bits: int = 0
    rx_half_duplex: int = 0
    rx_collision: int = 0
    rx_noise: int = 0
    rx_busy_time_s: float = 0.0
    # fault-injection counters
    tx_suppressed: int = 0
    rx_outage: int = 0

    def outcome_count(self, outcome: RxOutcome) -> int:
        return {
            RxOutcome.OK: self.rx_ok,
            RxOutcome.HALF_DUPLEX: self.rx_half_duplex,
            RxOutcome.COLLISION: self.rx_collision,
            RxOutcome.NOISE: self.rx_noise,
            RxOutcome.OFFLINE: self.rx_outage,
        }[outcome]


@dataclass
class _TxInterval:
    __slots__ = ("start", "end")

    start: float
    end: float


class AcousticModem:
    """The half-duplex transceiver owned by one sensor node.

    The MAC layer attaches via :attr:`on_receive` (called with every decoded
    frame and its :class:`Arrival`) and optionally :attr:`on_rx_failure`
    (called with failed arrivals, used by tests and collision metrics).
    """

    def __init__(self, sim: Simulator, node_id: int, channel: "AcousticChannel") -> None:
        self.sim = sim
        self.node_id = node_id
        self.channel = channel
        #: Failure injection: a disabled modem neither sends nor receives.
        self.enabled = True
        #: Partial outages (node alive, one chain down): a disabled TX
        #: chain silently swallows transmissions; a disabled RX chain
        #: drops arrivals.  The MAC keeps running and must recover through
        #: its own timeouts — unlike ``enabled``, these never raise.
        self.tx_enabled = True
        self.rx_enabled = True
        self.stats = ModemStats()
        # The tracer is fixed at Simulator construction, so its enabled flag
        # can be cached: every emit call site below evaluates its arguments
        # (``frame.describe()`` string building in particular) eagerly, and
        # the receive path emits once per arrival — guarding on a cached
        # bool keeps disabled-trace runs from paying for any of it.
        self._trace = sim.trace
        self._trace_on = sim.trace.enabled
        # The channel's collaborators are fixed before any modem exists
        # (the PER model is built in the channel constructor), so the
        # decode path — run once per arrival — reads them through locals
        # cached here instead of three attribute chains per decode.
        self._link_budget = channel.link_budget
        self._per_model = channel.per_model
        self._per_rng = channel.per_rng
        self._push_at = sim.push_at
        self._pool_cap = channel.arrival_pool_cap
        self.on_receive: Optional[Callable[[Frame, Arrival], None]] = None
        self.on_rx_failure: Optional[Callable[[Arrival, RxOutcome], None]] = None
        self._tx_intervals: List[_TxInterval] = []
        self._arrivals: List[Arrival] = []
        # Parallel struct-of-arrays mirror of ``_arrivals`` (slot i holds
        # arrival i's start/end/level), so the interferer overlap scan in
        # _decode_outcome is one vectorized window test instead of a Python
        # loop over every pending arrival.  Grown by doubling; compacted in
        # lock-step with the list by _prune_arrivals.
        self._arr_start = np.empty(VECTOR_SCAN_MIN, dtype=np.float64)
        self._arr_end = np.empty(VECTOR_SCAN_MIN, dtype=np.float64)
        self._arr_level = np.empty(VECTOR_SCAN_MIN, dtype=np.float64)
        self._rx_busy_until = 0.0
        self._last_tx_end = 0.0
        # Longest on-air duration seen (tx or rx).  Anything that ended more
        # than this long ago cannot overlap an arrival still in flight — an
        # in-flight arrival started at most one duration before now — so it
        # is the exact retention horizon for the overlap scans.  Keeping the
        # interval lists this tight turns _decode_outcome's interferer scan
        # from O(arrivals within 30 s) into O(arrivals within one frame).
        self._max_duration_s = 0.0

    # ------------------------------------------------------------------
    # Transmit path
    # ------------------------------------------------------------------
    @property
    def transmitting(self) -> bool:
        """True while a transmission is on the wire.

        Transmissions are serialized (:meth:`transmit` refuses to overlap)
        and simulation time never runs backwards, so "inside any interval"
        reduces to "before the end of the latest one": earlier intervals
        ended at or before the latest one started, and a query can never
        precede the latest interval's start.
        """
        return self.sim.now < self._last_tx_end

    def tx_end_time(self) -> float:
        """End time of the latest transmission (or 0.0 if none yet)."""
        return self._last_tx_end

    def transmit(self, frame: Frame) -> float:
        """Send ``frame`` now; returns its on-air duration.

        Raises RuntimeError if a transmission is already in progress — MAC
        protocols are responsible for serializing their own transmissions,
        and violating that is always a protocol bug worth failing loudly on.
        """
        if not self.enabled:
            raise RuntimeError(f"node {self.node_id}: transmit on a failed modem")
        if self.transmitting:
            raise RuntimeError(
                f"node {self.node_id}: transmit({frame.describe()}) while "
                "already transmitting"
            )
        if not self.tx_enabled:
            # TX-chain outage: the frame is lost in the dead amplifier.
            # Unlike a dead modem this is not a protocol bug — the MAC's
            # own retry/timeout machinery is expected to absorb it.
            self.stats.tx_suppressed += 1
            if self._trace_on:
                self._trace.emit(
                    self.sim.now, "phy.tx_suppressed", self.node_id, frame=frame.describe()
                )
            return 0.0
        duration = frame.duration_s(self.channel.bitrate_bps)
        frame.timestamp = self.sim.now
        self._tx_intervals.append(_TxInterval(self.sim.now, self.sim.now + duration))
        self._last_tx_end = self.sim.now + duration
        if duration > self._max_duration_s:
            self._max_duration_s = duration
        self._prune(self._tx_intervals)
        self.stats.tx_frames += 1
        self.stats.tx_bits += frame.size_bits
        self.stats.tx_time_s += duration
        if self._trace_on:
            self._trace.emit(
                self.sim.now, "phy.tx", self.node_id, frame=frame.describe(), dur=round(duration, 6)
            )
        self.channel.broadcast(self, frame, duration)
        return duration

    # ------------------------------------------------------------------
    # Receive path (driven by the channel)
    # ------------------------------------------------------------------
    def begin_arrival(self, arrival: Arrival) -> None:
        """Channel callback: a signal's leading edge reached this modem."""
        if not self.enabled:
            return
        if not self.rx_enabled:
            self.stats.rx_outage += 1
            # No finish event will ever fire for this arrival, so it can go
            # straight back to the free-list when pooling is on.
            pool = self.channel.arrival_pool
            if pool is not None and len(pool) < self._pool_cap:
                pool.append(arrival)
            return
        slot = len(self._arrivals)
        if slot == len(self._arr_start):
            capacity = slot * 2
            for name in ("_arr_start", "_arr_end", "_arr_level"):
                old = getattr(self, name)
                fresh = np.empty(capacity, dtype=np.float64)
                fresh[:slot] = old
                setattr(self, name, fresh)
        arrival._slot = slot
        self._arr_start[slot] = arrival.start
        self._arr_end[slot] = arrival.end
        self._arr_level[slot] = arrival.level_db
        self._arrivals.append(arrival)
        end = arrival.end
        duration = end - arrival.start
        if duration > self._max_duration_s:
            self._max_duration_s = duration
        # Accumulate receiver-busy time as interval union (overlaps counted once).
        busy_from = self._rx_busy_until
        if busy_from < arrival.start:
            busy_from = arrival.start
        if end > busy_from:
            self.stats.rx_busy_time_s += end - busy_from
            self._rx_busy_until = end
        # Fast-path push: the end time is trivially >= now, so the
        # schedule_at validation wrapper adds nothing but a call frame.
        self._push_at(end, self._finish_arrival, (arrival,))

    def _finish_arrival(self, arrival: Arrival) -> None:
        if not self.enabled or not self.rx_enabled:
            # The node died (or its RX chain dropped) while this signal was
            # in flight: nothing is decoded and no RNG is drawn, so clean
            # runs — where both flags are always True — are untouched.
            self.stats.rx_outage += 1
            self._prune_arrivals()
            if self._trace_on:
                self._trace.emit(
                    self.sim.now,
                    "phy.rx_fail",
                    self.node_id,
                    frame=arrival.frame.describe(),
                    why=RxOutcome.OFFLINE.value,
                )
            return
        outcome = self._decode_outcome(arrival)
        self._prune_arrivals()
        if outcome is RxOutcome.OK:
            self.stats.rx_ok += 1
            self.stats.rx_ok_bits += arrival.frame.size_bits
            if self._trace_on:
                self._trace.emit(
                    self.sim.now, "phy.rx", self.node_id, frame=arrival.frame.describe()
                )
            if self.on_receive is not None:
                self.on_receive(arrival.frame, arrival)
        else:
            if outcome is RxOutcome.HALF_DUPLEX:
                self.stats.rx_half_duplex += 1
            elif outcome is RxOutcome.COLLISION:
                self.stats.rx_collision += 1
            else:
                self.stats.rx_noise += 1
            if self._trace_on:
                self._trace.emit(
                    self.sim.now,
                    "phy.rx_fail",
                    self.node_id,
                    frame=arrival.frame.describe(),
                    why=outcome.value,
                )
            if self.on_rx_failure is not None:
                self.on_rx_failure(arrival, outcome)

    def _decode_outcome(self, arrival: Arrival) -> RxOutcome:
        a_start = arrival.start
        a_end = arrival.end
        # Half-duplex: any own transmission overlapping the arrival kills it.
        for iv in self._tx_intervals:
            if iv.start < a_end and iv.end > a_start:
                return RxOutcome.HALF_DUPLEX
        n = len(self._arrivals)
        if n >= VECTOR_SCAN_MIN:
            # Vectorized overlap-window scan over the parallel arrays.
            # Identical comparisons, level values and (slot == list) order
            # as the comprehension below, so the result is bit-for-bit the
            # same — .tolist() round-trips float64 exactly, and the
            # interference sum in sinr_db_from_levels runs in list order.
            mask = (self._arr_start[:n] < a_end) & (self._arr_end[:n] > a_start)
            mask[arrival._slot] = False
            if mask.any():
                interferer_levels = self._arr_level[:n][mask].tolist()
            else:
                interferer_levels = []
        else:
            interferer_levels = [
                other.level_db
                for other in self._arrivals
                if other is not arrival and other.start < a_end and other.end > a_start
            ]
        sinr_db = self._link_budget.sinr_db_from_levels(
            arrival.level_db,
            interferer_levels,
            extra_noise_db=self.channel.extra_noise_db,
        )
        draw = self._per_rng.random()
        ok = self._per_model.is_successful(sinr_db, arrival.frame.size_bits, draw)
        if ok:
            return RxOutcome.OK
        return RxOutcome.COLLISION if interferer_levels else RxOutcome.NOISE

    # ------------------------------------------------------------------
    # Housekeeping
    # ------------------------------------------------------------------
    def _prune(self, intervals: List[_TxInterval]) -> None:
        horizon = self.sim.now - self._max_duration_s
        if intervals and intervals[0].end < horizon:
            intervals[:] = [iv for iv in intervals if iv.end >= horizon]

    def _prune_arrivals(self) -> None:
        arrivals = self._arrivals
        horizon = self.sim.now - self._max_duration_s
        if not arrivals or arrivals[0].end >= horizon:
            return
        # Compact list and parallel arrays in lock-step, reassigning slots.
        # Pruned arrivals' finish events have already fired (they end before
        # the horizon, which trails now), so with pooling on they can be
        # recycled — no MAC retains arrivals past its receive callback.
        starts = self._arr_start
        ends = self._arr_end
        levels = self._arr_level
        pool = self.channel.arrival_pool
        cap = self._pool_cap
        kept: List[Arrival] = []
        for a in arrivals:
            if a.end >= horizon:
                slot = len(kept)
                a._slot = slot
                starts[slot] = a.start
                ends[slot] = a.end
                levels[slot] = a.level_db
                kept.append(a)
            elif pool is not None and len(pool) < cap:
                pool.append(a)
        self._arrivals = kept
