"""Crash-recovery smoke: kill the service mid-job, restart, recover.

Exercises the leased-claim fault path end to end, deterministically:

1. Boot the service with ``--chaos-kill-after 2 --lease-s 2``: the
   process SIGKILLs **itself** on the second progress line of the first
   job — no cleanup, no settle, a leased ``running`` row left behind.
2. Submit a quick Fig. 6 sweep and wait for the service to die mid-job.
   Assert the store still shows the job ``running`` under the dead
   process's lease (nothing reaped it yet).
3. Restart the service on the same store *without* chaos.  The expired
   lease is reaped (on open or by the heartbeat loop), the job requeues
   with its crash recorded in the error chain, and a worker re-runs it.
4. Assert the recovered job is ``done`` on attempt 2, the error chain
   names the expired lease, and the served figure is bit-identical to a
   direct ``engine.run_request`` call in this process.

Run from the repo root (CI's crash-smoke job, or locally)::

    PYTHONPATH=src python scripts/crash_smoke.py
"""

from __future__ import annotations

import json
import os
import signal
import sqlite3
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

#: Small enough to finish in seconds, big enough to emit several
#: per-cell progress lines (the chaos hook fires on line 2).
REQUEST = {
    "target": "fig6",
    "quick": True,
    "seeds": [1],
    "overrides": {"n_sensors": 6, "sim_time_s": 3.0, "warmup_s": 2.0},
}

BOOT_TIMEOUT_S = 30.0
CRASH_TIMEOUT_S = 120.0
RECOVERY_TIMEOUT_S = 300.0
LEASE_S = 2.0


def _http(method: str, url: str, payload=None):
    data = json.dumps(payload).encode("utf-8") if payload is not None else None
    request = urllib.request.Request(
        url, data=data, method=method, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _boot(workdir: Path, env: dict, chaos: bool) -> subprocess.Popen:
    argv = [
        sys.executable,
        "-m",
        "repro.experiments.cli",
        "serve",
        "--port",
        "0",
        "--store",
        str(workdir / "jobs.sqlite"),
        "--allow-shutdown",
        "--workers",
        "1",
        "--no-cache",
        "--lease-s",
        str(LEASE_S),
    ]
    if chaos:
        argv += ["--chaos-kill-after", "2"]
    return subprocess.Popen(
        argv,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=str(workdir),
    )


def _wait_for_url(proc: subprocess.Popen) -> str:
    deadline = time.monotonic() + BOOT_TIMEOUT_S
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise SystemExit(
                f"service exited before becoming ready (rc={proc.poll()})"
            )
        print(f"  [serve] {line.rstrip()}")
        if line.startswith("listening on "):
            return line.split("listening on ", 1)[1].strip()
    raise SystemExit("service never printed its ready line")


def _job_row(store_path: Path, key: str) -> sqlite3.Row:
    conn = sqlite3.connect(str(store_path))
    conn.row_factory = sqlite3.Row
    try:
        return conn.execute(
            "SELECT state, owner, attempts, error FROM jobs WHERE key = ?", (key,)
        ).fetchone()
    finally:
        conn.close()


def main() -> int:
    repo = Path(__file__).resolve().parent.parent
    workdir = Path(tempfile.mkdtemp(prefix="repro-crash-smoke-"))
    store_path = workdir / "jobs.sqlite"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(repo / "src")

    # ---- phase 1: the service kills itself mid-job -------------------
    victim = _boot(workdir, env, chaos=True)
    survivor = None
    try:
        base = _wait_for_url(victim)
        status, submitted = _http("POST", f"{base}/jobs", REQUEST)
        assert status == 202, f"submit should queue (202), got {status}"
        key = submitted["job"]["key"]
        print(f"submitted job {key[:16]}…, waiting for the chaos kill")

        rc = victim.wait(timeout=CRASH_TIMEOUT_S)
        assert rc == -signal.SIGKILL, f"expected SIGKILL exit, got rc={rc}"
        print("service SIGKILLed itself mid-job (as armed)")

        row = _job_row(store_path, key)
        assert row is not None, "job row vanished from the store"
        assert row["state"] == "running", f"expected leased row, got {row['state']}"
        assert row["owner"], "running row lost its owner"
        assert row["attempts"] == 1
        print(f"store shows the orphaned lease (owner={row['owner']})")

        # ---- phase 2: a fresh service recovers the job ---------------
        survivor = _boot(workdir, env, chaos=False)
        base = _wait_for_url(survivor)
        deadline = time.monotonic() + RECOVERY_TIMEOUT_S
        job = {"state": "running"}
        while job["state"] not in ("done", "failed", "quarantined"):
            if time.monotonic() > deadline:
                raise SystemExit(f"job stuck in state {job['state']!r}")
            status, polled = _http("GET", f"{base}/jobs/{key}?wait=10")
            job = polled["job"]
        assert job["state"] == "done", f"recovery failed: {job['error']}"
        assert job["attempts"] == 2, f"expected attempt 2, got {job['attempts']}"
        assert "lease expired" in (job["error"] or ""), (
            "crash not recorded in the error chain"
        )
        print("job recovered on attempt 2, crash preserved in error chain")

        status, served = _http("GET", f"{base}/jobs/{key}/result")
        assert status == 200, f"result fetch: {status}"

        from repro.experiments.engine import SweepRequest, request_key, run_request

        request = SweepRequest.from_dict(REQUEST)
        assert request_key(request) == key, "request_key drifted from service"
        direct = run_request(request, workers=1, cache=None)
        served_doc = json.dumps(served["result"]["figure"], sort_keys=True)
        direct_doc = json.dumps(direct.to_dict()["figure"], sort_keys=True)
        assert served_doc == direct_doc, "recovered result differs from direct run"
        print("recovered figure bit-identical to direct engine run")

        status, _ = _http("POST", f"{base}/shutdown")
        assert status == 202, f"shutdown: {status}"
        rc = survivor.wait(timeout=30)
        assert rc == 0, f"service exited {rc}"
        print("CRASH SMOKE PASSED")
        return 0
    finally:
        for proc in (victim, survivor):
            if proc is not None and proc.poll() is None:
                proc.kill()
                proc.wait()


if __name__ == "__main__":
    raise SystemExit(main())
