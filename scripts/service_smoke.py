"""End-to-end smoke of ``repro-uasn serve`` over real HTTP.

Boots the service as a subprocess, submits a quick Fig. 6 sweep over
HTTP, polls it to completion, and asserts:

1. the HTTP-served result is bit-identical to a direct
   ``engine.run_request`` call in this process;
2. an identical second submission is a dedupe hit — the job is served
   from the store with no second run (``attempts`` stays 1);
3. ``POST /shutdown`` stops the service cleanly (exit code 0).

Run from the repo root (CI's service-smoke job, or locally)::

    PYTHONPATH=src python scripts/service_smoke.py
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

#: Small enough to finish in seconds, big enough to exercise the sweep.
REQUEST = {
    "target": "fig6",
    "quick": True,
    "seeds": [1],
    "overrides": {"n_sensors": 6, "sim_time_s": 3.0, "warmup_s": 2.0},
}

BOOT_TIMEOUT_S = 30.0
JOB_TIMEOUT_S = 300.0


def _http(method: str, url: str, payload=None):
    data = json.dumps(payload).encode("utf-8") if payload is not None else None
    request = urllib.request.Request(
        url, data=data, method=method, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _wait_for_url(proc: subprocess.Popen) -> str:
    """Read the service's ``listening on <url>`` ready line."""
    deadline = time.monotonic() + BOOT_TIMEOUT_S
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise SystemExit(
                f"service exited before becoming ready (rc={proc.poll()})"
            )
        print(f"  [serve] {line.rstrip()}")
        if line.startswith("listening on "):
            return line.split("listening on ", 1)[1].strip()
    raise SystemExit("service never printed its ready line")


def main() -> int:
    repo = Path(__file__).resolve().parent.parent
    workdir = Path(tempfile.mkdtemp(prefix="repro-service-smoke-"))
    env = dict(os.environ)
    env["PYTHONPATH"] = str(repo / "src")
    env.setdefault("REPRO_CACHE_DIR", str(workdir / "cache"))

    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.experiments.cli",
            "serve",
            "--port",
            "0",
            "--store",
            str(workdir / "jobs.sqlite"),
            "--allow-shutdown",
            "--workers",
            "2",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=str(workdir),
    )
    try:
        base = _wait_for_url(proc)
        status, health = _http("GET", f"{base}/healthz")
        assert status == 200 and health["ok"], f"healthz: {status} {health}"
        print(f"healthz ok, workers alive: {health['workers_alive']}")

        status, submitted = _http("POST", f"{base}/jobs", REQUEST)
        assert status == 202, f"first submit should queue (202), got {status}"
        assert submitted["deduped"] is False
        key = submitted["job"]["key"]
        print(f"submitted job {key[:16]}…")

        deadline = time.monotonic() + JOB_TIMEOUT_S
        job = submitted["job"]
        while job["state"] not in ("done", "failed"):
            if time.monotonic() > deadline:
                raise SystemExit(f"job stuck in state {job['state']!r}")
            status, polled = _http("GET", f"{base}/jobs/{key}?wait=10")
            job = polled["job"]
        assert job["state"] == "done", f"job failed: {job['error']}"
        assert job["attempts"] == 1
        print(f"job done after {job['finished_at'] - job['started_at']:.1f}s")

        status, served = _http("GET", f"{base}/jobs/{key}/result")
        assert status == 200, f"result fetch: {status}"

        # The HTTP-served figure must be bit-identical to a direct engine
        # run of the same request (fresh compute: cache disabled here).
        from repro.experiments.engine import SweepRequest, request_key, run_request

        request = SweepRequest.from_dict(REQUEST)
        assert request_key(request) == key, "request_key drifted from service"
        direct = run_request(request, workers=2, cache=None)
        served_doc = json.dumps(served["result"]["figure"], sort_keys=True)
        direct_doc = json.dumps(direct.to_dict()["figure"], sort_keys=True)
        assert served_doc == direct_doc, "HTTP result differs from direct engine run"
        print("served figure bit-identical to direct engine run")

        # Identical resubmission: dedupe hit, no re-run scheduled.
        status, resubmitted = _http("POST", f"{base}/jobs", REQUEST)
        assert status == 200, f"dedupe submit should 200, got {status}"
        assert resubmitted["deduped"] is True, "resubmission was not deduped"
        assert resubmitted["job"]["attempts"] == 1, "dedupe hit re-ran the job"
        assert resubmitted["job"]["state"] == "done"
        print("identical resubmission deduped (no re-run)")

        status, _ = _http("POST", f"{base}/shutdown")
        assert status == 202, f"shutdown: {status}"
        rc = proc.wait(timeout=30)
        assert rc == 0, f"service exited {rc}"
        print("service shut down cleanly")
        print("SERVICE SMOKE PASSED")
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


if __name__ == "__main__":
    raise SystemExit(main())
