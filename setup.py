"""Shim so legacy `setup.py develop` works in offline environments
where pip's PEP 660 editable path is unavailable (no `wheel` package)."""

from setuptools import setup

setup()
